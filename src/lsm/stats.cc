#include "lsm/stats.h"

#include <cstdio>

namespace elmo::lsm {

const char* HistogramTypeName(HistogramType h) {
  switch (h) {
    case HistogramType::kGetMicros: return "get micros";
    case HistogramType::kWriteMicros: return "write micros";
    case HistogramType::kWalSyncMicros: return "wal sync micros";
    case HistogramType::kFlushMicros: return "flush micros";
    case HistogramType::kCompactionMicros: return "compaction micros";
    case HistogramType::kStallMicros: return "stall micros";
    case HistogramType::kFlushOutputBytes: return "flush output bytes";
    case HistogramType::kCompactionInputBytes:
      return "compaction input bytes";
    case HistogramType::kCompactionOutputBytes:
      return "compaction output bytes";
    case HistogramType::kHistogramMax: break;
  }
  return "unknown";
}

namespace {

void AtomicAddDouble(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<uint64_t>& a, uint64_t v) {
  uint64_t cur = a.load(std::memory_order_relaxed);
  while (cur > v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>& a, uint64_t v) {
  uint64_t cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void AtomicHistogram::Add(uint64_t value) {
  const double v = static_cast<double>(value);
  int b = 0;
  while (b < Histogram::kNumBuckets - 1 &&
         Histogram::BucketUpperBound(b) <= v) {
    b++;
  }
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
  num_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_, v);
  AtomicAddDouble(sum_squares_, v * v);
}

void AtomicHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  num_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  sum_squares_.store(0, std::memory_order_relaxed);
}

Histogram AtomicHistogram::Snapshot() const {
  Histogram h;
  uint64_t num = num_.load(std::memory_order_relaxed);
  if (num == 0) return h;
  uint64_t buckets[Histogram::kNumBuckets];
  for (int b = 0; b < Histogram::kNumBuckets; b++) {
    buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  h.SetRaw(static_cast<double>(min_.load(std::memory_order_relaxed)),
           static_cast<double>(max_.load(std::memory_order_relaxed)), num,
           sum_.load(std::memory_order_relaxed),
           sum_squares_.load(std::memory_order_relaxed), buckets);
  return h;
}

StatsSnapshot StatsSnapshot::Delta(const StatsSnapshot& prev) const {
  StatsSnapshot d;
  for (int i = 0; i < static_cast<int>(Ticker::kTickerMax); i++) {
    d.tickers[i] = tickers[i] >= prev.tickers[i]
                       ? tickers[i] - prev.tickers[i]
                       : 0;
  }
  for (int i = 0; i < static_cast<int>(HistogramType::kHistogramMax); i++) {
    d.histograms[i] = histograms[i];
    d.histograms[i].SubtractBaseline(prev.histograms[i]);
  }
  return d;
}

StatsSnapshot DbStats::GetSnapshot() const {
  StatsSnapshot s;
  for (int i = 0; i < static_cast<int>(Ticker::kTickerMax); i++) {
    s.tickers[i] = counters_[i].load(std::memory_order_relaxed);
  }
  for (int i = 0; i < static_cast<int>(HistogramType::kHistogramMax); i++) {
    s.histograms[i] = histograms_[i].Snapshot();
  }
  return s;
}

void DbStats::Reset() {
  for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
  for (auto& h : histograms_) h.Reset();
  for (int l = 0; l < kMaxLevels; l++) {
    level_read_[l].store(0, std::memory_order_relaxed);
    level_write_[l].store(0, std::memory_order_relaxed);
    level_in_[l].store(0, std::memory_order_relaxed);
    level_compactions_[l].store(0, std::memory_order_relaxed);
  }
}

std::string DbStats::ToString() const {
  char buf[1024];
  snprintf(
      buf, sizeof(buf),
      "writes: %llu  deletes: %llu  gets(hit/miss): %llu/%llu  seeks: %llu\n"
      "bytes written: %llu  bytes read: %llu  wal bytes: %llu  wal syncs: %llu\n"
      "flushes: %llu (%llu bytes)  compactions: %llu (read %llu, wrote %llu)"
      "  trivial moves: %llu\n"
      "write stalls: slowdown %llu, stop %llu, total stall micros %llu\n"
      "stall reasons: l0-slowdown %llu, l0-stop %llu, memtable-stop %llu\n"
      "block cache: hits %llu, misses %llu\n"
      "info log: dropped lines %llu, write failures %llu\n"
      "options changes applied: %llu\n",
      (unsigned long long)Get(Ticker::kWriteCount),
      (unsigned long long)Get(Ticker::kDeleteCount),
      (unsigned long long)Get(Ticker::kGetHit),
      (unsigned long long)Get(Ticker::kGetMiss),
      (unsigned long long)Get(Ticker::kSeekCount),
      (unsigned long long)Get(Ticker::kBytesWritten),
      (unsigned long long)Get(Ticker::kBytesRead),
      (unsigned long long)Get(Ticker::kWalBytes),
      (unsigned long long)Get(Ticker::kWalSyncs),
      (unsigned long long)Get(Ticker::kFlushCount),
      (unsigned long long)Get(Ticker::kFlushBytes),
      (unsigned long long)Get(Ticker::kCompactionCount),
      (unsigned long long)Get(Ticker::kCompactionBytesRead),
      (unsigned long long)Get(Ticker::kCompactionBytesWritten),
      (unsigned long long)Get(Ticker::kTrivialMoveCount),
      (unsigned long long)Get(Ticker::kWriteSlowdownCount),
      (unsigned long long)Get(Ticker::kWriteStopCount),
      (unsigned long long)Get(Ticker::kWriteStallMicros),
      (unsigned long long)Get(Ticker::kStallL0SlowdownCount),
      (unsigned long long)Get(Ticker::kStallL0StopCount),
      (unsigned long long)Get(Ticker::kStallMemtableStopCount),
      (unsigned long long)Get(Ticker::kBlockCacheHit),
      (unsigned long long)Get(Ticker::kBlockCacheMiss),
      (unsigned long long)Get(Ticker::kInfoLogDroppedLines),
      (unsigned long long)Get(Ticker::kInfoLogWriteFailures),
      (unsigned long long)Get(Ticker::kOptionsChanges));
  std::string out = buf;

  out += "histograms (count / p50 / p99 / max):\n";
  for (int i = 0; i < static_cast<int>(HistogramType::kHistogramMax); i++) {
    const auto type = static_cast<HistogramType>(i);
    Histogram h = GetHistogram(type);
    snprintf(buf, sizeof(buf),
             "  %-24s: count %llu  p50 %.1f  p99 %.1f  max %.1f\n",
             HistogramTypeName(type), (unsigned long long)h.Count(),
             h.Median(), h.Percentile(99.0), h.Max());
    out += buf;
  }
  return out;
}

}  // namespace elmo::lsm
