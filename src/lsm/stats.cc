#include "lsm/stats.h"

#include <cstdio>

namespace elmo::lsm {

std::string DbStats::ToString() const {
  char buf[1024];
  snprintf(
      buf, sizeof(buf),
      "writes: %llu  deletes: %llu  gets(hit/miss): %llu/%llu  seeks: %llu\n"
      "bytes written: %llu  bytes read: %llu  wal bytes: %llu  wal syncs: %llu\n"
      "flushes: %llu (%llu bytes)  compactions: %llu (read %llu, wrote %llu)"
      "  trivial moves: %llu\n"
      "write stalls: slowdown %llu, stop %llu, total stall micros %llu\n",
      (unsigned long long)Get(Ticker::kWriteCount),
      (unsigned long long)Get(Ticker::kDeleteCount),
      (unsigned long long)Get(Ticker::kGetHit),
      (unsigned long long)Get(Ticker::kGetMiss),
      (unsigned long long)Get(Ticker::kSeekCount),
      (unsigned long long)Get(Ticker::kBytesWritten),
      (unsigned long long)Get(Ticker::kBytesRead),
      (unsigned long long)Get(Ticker::kWalBytes),
      (unsigned long long)Get(Ticker::kWalSyncs),
      (unsigned long long)Get(Ticker::kFlushCount),
      (unsigned long long)Get(Ticker::kFlushBytes),
      (unsigned long long)Get(Ticker::kCompactionCount),
      (unsigned long long)Get(Ticker::kCompactionBytesRead),
      (unsigned long long)Get(Ticker::kCompactionBytesWritten),
      (unsigned long long)Get(Ticker::kTrivialMoveCount),
      (unsigned long long)Get(Ticker::kWriteSlowdownCount),
      (unsigned long long)Get(Ticker::kWriteStopCount),
      (unsigned long long)Get(Ticker::kWriteStallMicros));
  return buf;
}

}  // namespace elmo::lsm
