// WriteBatch: atomically applied group of updates, also the unit that
// goes into the WAL. Wire format (leveldb): 8-byte sequence, 4-byte
// count, then tagged records.
#pragma once

#include <cstdint>
#include <string>

#include "lsm/dbformat.h"
#include "util/slice.h"
#include "util/status.h"

namespace elmo {

class MemTable;

class WriteBatch {
 public:
  WriteBatch();

  void Put(const Slice& key, const Slice& value);
  void Delete(const Slice& key);
  void Clear();
  void Append(const WriteBatch& source);

  // Bytes in the underlying representation (WAL payload size).
  size_t ApproximateSize() const { return rep_.size(); }
  int Count() const;

  // Iterate over the batch contents.
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void Put(const Slice& key, const Slice& value) = 0;
    virtual void Delete(const Slice& key) = 0;
  };
  Status Iterate(Handler* handler) const;

  // --- internal helpers used by the DB ---
  SequenceNumber Sequence() const;
  void SetSequence(SequenceNumber seq);
  Slice Contents() const { return Slice(rep_); }
  void SetContentsFrom(const Slice& contents);
  // Apply to a memtable using the batch's starting sequence number.
  Status InsertInto(MemTable* memtable) const;

 private:
  std::string rep_;
};

}  // namespace elmo
