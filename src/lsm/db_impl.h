// DBImpl: the engine behind DB. Single-mutex design in the leveldb
// lineage, with two execution modes:
//
//  * real envs (Posix/Mem): flushes and compactions run on Env thread
//    pools; writers wait on a condition variable during stalls.
//  * SimEnv: background jobs run inline under a job meter and are
//    assigned virtual completion times on core lanes; writers stall
//    against VirtualStallState and jump the virtual clock forward.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "env/io_tracing_env.h"
#include "env/sim_env.h"
#include "env/space_monitor.h"
#include "lsm/db.h"
#include "lsm/dbformat.h"
#include "lsm/error_handler.h"
#include "lsm/event_listener.h"
#include "lsm/info_logger.h"
#include "lsm/log_writer.h"
#include "lsm/memtable.h"
#include "lsm/span.h"
#include "lsm/stats_sampler.h"
#include "lsm/trace.h"
#include "lsm/version_set.h"
#include "lsm/virtual_stall.h"
#include "monitor/health_monitor.h"
#include "util/rate_limiter.h"

namespace elmo::lsm {

class SnapshotImpl : public Snapshot {
 public:
  explicit SnapshotImpl(SequenceNumber seq) : sequence(seq) {}
  const SequenceNumber sequence;
};

class DBImpl : public DB {
 public:
  DBImpl(const Options& options, const std::string& dbname);
  ~DBImpl() override;

  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions& options, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* updates) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  std::unique_ptr<Iterator> NewIterator(const ReadOptions& options) override;
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;
  bool GetProperty(const Slice& property, std::string* value) override;
  Status CompactRange(const Slice* begin, const Slice* end) override;
  void GetApproximateSizes(const Range* ranges, int n,
                           uint64_t* sizes) override;
  Status FlushMemTable() override;
  Status WaitForBackgroundWork() override;
  Status Resume() override;
  Status StartTrace(const std::string& path) override;
  Status EndTrace() override;
  Status StartIOTrace(const std::string& path) override;
  Status EndIOTrace() override;
  Status StartBlockCacheTrace(const std::string& path) override;
  Status EndBlockCacheTrace() override;
  Status StartSpanTrace(const std::string& path,
                        const SpanTraceOptions& options) override;
  Status EndSpanTrace() override;
  Status SetOptions(
      const std::map<std::string, std::string>& changes) override;
  const DbStats& stats() const override { return stats_; }
  const Options& options() const override { return options_; }

 private:
  friend class DB;

  struct ImmEntry {
    std::shared_ptr<MemTable> mem;
    uint64_t log_number;  // WAL file holding this memtable's data
  };

  struct CompactionOutput {
    uint64_t number;
    uint64_t file_size;
    InternalKey smallest, largest;
  };

  // --- open/recovery ---
  Status Recover();
  Status NewDBFiles();
  Status RecoverLogFile(uint64_t log_number, SequenceNumber* max_sequence);
  Status SwitchToNewLog();

  // --- write path ---
  Status MakeRoomForWrite(std::unique_lock<std::mutex>& l);
  int ImmCountForStall();     // virtual count under sim, real otherwise
  int L0CountForStall();

  // --- background: scheduling ---
  void MaybeScheduleFlush();       // REQUIRES: mu_
  void MaybeScheduleCompaction();  // REQUIRES: mu_
  void BackgroundFlushCall();      // thread-pool entry
  void BackgroundCompactionCall();

  // --- background: the work ---
  // Flush every queued immutable memtable into one L0 table. Fills
  // `info` (everything except duration_micros, which the caller owns)
  // and fires OnFlushBegin; the caller fires OnFlushCompleted once it
  // knows the job duration. On failure `err_source` says which layer
  // failed (the table build vs the MANIFEST apply) so the error handler
  // classifies it correctly.
  Status FlushWork(FlushJobInfo* info, BackgroundErrorSource* err_source);
  // Same contract for compactions: the caller presets info->reason and
  // fires OnCompactionCompleted with the duration.
  Status CompactionWork(std::unique_ptr<Compaction> c, int* l0_consumed,
                        int* l0_produced,
                        std::vector<uint64_t>* output_numbers,
                        CompactionJobInfo* info,
                        BackgroundErrorSource* err_source);
  Status WriteLevel0Table(const std::vector<std::shared_ptr<MemTable>>& mems,
                          VersionEdit* edit, FileMetaData* meta);
  Status OpenCompactionOutputFile(std::unique_ptr<WritableFile>* file,
                                  uint64_t* number);

  // Sim-mode drivers (run jobs inline under the meter).
  void RunFlushSim();        // REQUIRES: mu_
  void RunCompactionsSim();  // REQUIRES: mu_

  void RemoveObsoleteFiles();  // REQUIRES: mu_

  // --- background-error handling & self-healing (see error_handler.h) ---
  // Classify a background failure into the error state machine, bump the
  // severity tickers, fire OnBackgroundError, and wake stalled writers.
  // Aborted statuses during shutdown are ignored (orderly teardown, not
  // an error). REQUIRES: mu_.
  void RecordBackgroundError(BackgroundErrorSource source, const Status& s);
  // One recovery attempt (auto-resume retry or manual DB::Resume()):
  // repair per source/kind — recheck free space for NoSpace, switch to a
  // fresh WAL for WAL errors, force a fresh MANIFEST for manifest
  // errors — then clear the state and reschedule paused flushes and
  // compactions. On failure, backs off or escalates. REQUIRES: mu_.
  Status ResumeImpl(bool manual);
  // Run ResumeImpl if an auto-resume retry is due on the engine clock.
  // Piggybacked on foreground call sites (the only clock observer under
  // SimEnv); the recovery thread drives it under real envs.
  // REQUIRES: mu_.
  void MaybeResumeLocked();
  // True (and records a soft NoSpace pause) when the free-space monitor
  // says the headroom reserve is violated. REQUIRES: mu_.
  bool SpaceLowLocked(BackgroundErrorSource source);
  // Lazily start the real-env recovery thread. REQUIRES: mu_.
  void StartRecoveryThreadLocked();
  void RecoveryThreadLoop();
  // Advance the sim clock past every scheduled background completion so
  // the virtual stall counters drain. REQUIRES: mu_; sim mode only.
  void SettleVirtualClockLocked();
  void NotifyBackgroundError(const BackgroundErrorInfo& info);
  void NotifyErrorRecoveryBegin(const BackgroundErrorInfo& info);
  void NotifyErrorRecoveryCompleted(const BackgroundErrorInfo& info);

  SequenceNumber SmallestSnapshot() const;  // REQUIRES: mu_

  std::unique_ptr<Iterator> NewInternalIterator(const ReadOptions& options,
                                                SequenceNumber* latest_seq);

  // Charge the sim clock for a foreground write/get (no-op on real env).
  void ChargeWriteCpu(size_t batch_bytes, int batch_count);
  void ChargeGetCpu(int files_probed);

  // --- observability ---
  void NotifyFlushBegin(const FlushJobInfo& info);
  void NotifyFlushCompleted(const FlushJobInfo& info);
  void NotifyCompactionBegin(const CompactionJobInfo& info);
  void NotifyCompactionCompleted(const CompactionJobInfo& info);
  // Fires OnStallConditionChanged when `next` differs from the current
  // condition. REQUIRES: mu_.
  void UpdateStallCondition(StallCondition next, StallReason reason,
                            uint64_t wait_micros);
  void NotifyWriteStop(StallReason reason, uint64_t wait_micros);
  // RocksDB-style per-level table (files, bytes, score, read/write amp).
  // REQUIRES: mu_.
  std::string LevelStatsString() const;
  // Record a time-series sample if one is due on the engine clock. Under
  // SimEnv this is the only sampling mechanism: the DB piggybacks it on
  // write/read/background call sites, since no real thread can observe
  // virtual time. REQUIRES: mu_.
  void MaybeSampleLocked();
  // Instantaneous engine state for the sampler / metrics exposition.
  // REQUIRES: mu_.
  EngineGauges GatherGaugesLocked();
  // Fold the block cache's since-last-sync hit/miss deltas into the
  // stats registry tickers. REQUIRES: mu_.
  void SyncCacheStatsLocked();
  // Fold the BufferLogger dropped-line count and the info LOG's write
  // failures into the registry tickers. REQUIRES: mu_.
  void SyncLogStatsLocked();
  // Render the Prometheus exposition for the current state. REQUIRES:
  // mu_.
  std::string RenderPrometheusLocked();
  // Rewrite options_.metrics_export_path (no-op when unset); goes
  // through raw_env_ so exporting never shows up in IO traces.
  // REQUIRES: mu_.
  void ExportMetricsLocked();
  // Real-env sampler thread body (SimEnv never starts the thread).
  void SamplerThreadLoop();
  // The shared core of SetOptions(): validate `changes` against the
  // schema's runtime-mutable subset, apply them to options_, and
  // re-plumb dependent state (cache capacity, limiter rate, background
  // lanes/threads, sampler cadence). `source` tags the LOG event and
  // ledger entry ("set_options" for the public API, "recovery" when
  // replaying the persisted OPTIONS file at open). REQUIRES: mu_.
  Status ApplyDynamicOptionsLocked(
      const std::map<std::string, std::string>& changes,
      const std::string& source);
  void TraceWriteBatch(const WriteBatch& updates, uint64_t ts_us);
  void TraceGet(const Slice& key, uint64_t ts_us);

  // --- constant state ---
  Options options_;  // sanitized copy
  const std::string dbname_;
  Env* raw_env_;  // env the user supplied; trace output is written here
  // All engine IO is routed through this decorator (options_.env is
  // repointed at it in the constructor) so DB::StartIOTrace can observe
  // every file operation. Declared before table_cache_/versions_ so it
  // outlives everything that holds an Env*.
  std::unique_ptr<IOTracingEnv> io_env_;
  Env* env_;     // == io_env_.get()
  SimEnv* sim_;  // non-null iff the raw env is deterministic
  std::shared_ptr<Cache> block_cache_;
  std::shared_ptr<BlockCacheTracer> block_cache_tracer_;
  InternalKeyComparator internal_comparator_;
  std::unique_ptr<TableCache> table_cache_;

  // --- mutable state, guarded by mu_ ---
  std::mutex mu_;
  std::condition_variable bg_work_finished_;
  std::shared_ptr<MemTable> mem_;
  std::deque<ImmEntry> imm_;
  std::unique_ptr<WritableFile> logfile_;
  uint64_t logfile_number_ = 0;
  std::unique_ptr<log::Writer> log_;
  uint64_t wal_bytes_since_sync_ = 0;
  uint64_t wal_live_bytes_ = 0;  // bytes in WALs with unflushed data

  std::unique_ptr<VersionSet> versions_;
  std::list<SequenceNumber> snapshots_;
  std::set<uint64_t> pending_outputs_;

  int active_flushes_ = 0;
  int active_compactions_ = 0;
  bool manual_compaction_active_ = false;
  // Classified background-error state machine; replaces the old sticky
  // bg_error_ Status. Guarded by mu_.
  ErrorHandler error_handler_;
  std::atomic<bool> shutting_down_{false};

  // Free-space headroom monitor (null unless
  // options.free_space_reserved_bytes > 0). Guarded by mu_.
  std::unique_ptr<SpaceMonitor> space_monitor_;

  // Write slowdown limiter (delayed_write_rate).
  RateLimiter slowdown_limiter_;

  // Sim-mode state.
  VirtualStallState vstall_;
  bool in_sim_background_ = false;  // re-entrancy guard

  // Current write-path throttle state (for listener transitions).
  StallCondition stall_condition_ = StallCondition::kNormal;

  DbStats stats_;
  // Cache counters already folded into the tickers; guarded by mu_.
  Cache::Stats last_cache_stats_;
  // Logger-loss counters already folded into the tickers; guarded by mu_.
  uint64_t last_info_log_dropped_ = 0;
  uint64_t last_info_log_failures_ = 0;

  // --- observability: time series, structured LOG, trace ---
  std::unique_ptr<StatsSampler> sampler_;  // null unless sampling enabled
  std::shared_ptr<DbInfoLogger> info_event_log_;
  // Live health pipeline (null unless the sampler is on and
  // enable_health_monitor is set); fed from MaybeSampleLocked, read by
  // GetProperty("elmo.health"). Guarded by mu_.
  std::unique_ptr<monitor::HealthMonitor> health_;
  monitor::HealthStatus last_health_status_ = monitor::HealthStatus::kOk;

  // Ledger of applied dynamic option changes, newest last; backs
  // GetProperty("elmo.options_changes"). Bounded drop-oldest. Guarded
  // by mu_.
  struct OptionsChangeRecord {
    uint64_t ts_us = 0;
    std::string source;
    struct Delta {
      std::string name, from, to;
    };
    std::vector<Delta> deltas;
  };
  std::deque<OptionsChangeRecord> options_changes_;

  // Real-env auto-resume thread (SimEnv piggybacks on foreground call
  // sites instead); started lazily on the first recoverable error,
  // joined in the destructor. Polls MaybeResumeLocked on a short
  // cadence — the backoff schedule itself lives in the error handler.
  std::thread recovery_thread_;
  std::mutex recovery_mu_;
  std::condition_variable recovery_cv_;
  bool recovery_stop_ = false;         // guarded by recovery_mu_
  bool recovery_thread_started_ = false;  // guarded by mu_

  // Real-env sampler thread; joined in the destructor before the info
  // LOG closes so no tick outlives the DB.
  std::thread sampler_thread_;
  std::mutex sampler_mu_;
  std::condition_variable sampler_cv_;
  bool sampler_stop_ = false;  // guarded by sampler_mu_
  // Sampler cadence the thread sleeps on; atomic so a SetOptions retime
  // is visible without the thread taking mu_ just to read it.
  std::atomic<uint64_t> sampler_interval_ms_{0};

  // Trace capture. `tracing_` is the hot-path gate; `trace_` is swapped
  // under trace_mu_ (a leaf mutex, safe to take with mu_ held).
  std::atomic<bool> tracing_{false};
  std::mutex trace_mu_;
  std::shared_ptr<TraceWriter> trace_;

  // Slow-op span trace. Always constructed (iterators hold a stable
  // SpanSink* into it); writes go to raw_env_ so the trace's own IO
  // never shows up in the IO trace. Initialized in the constructor
  // after raw_env_ is known.
  std::unique_ptr<SpanTracer> span_tracer_;
  // Global-aggregate totals at DB open; sampler gauges report the
  // difference so span columns are per-run even when several DBs share
  // the process.
  SpanAggregate::Snapshot span_baseline_;
};

}  // namespace elmo::lsm
