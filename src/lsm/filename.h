// DB directory layout: <dbname>/NNNNNN.log | NNNNNN.sst | MANIFEST-NNNNNN
// | CURRENT | LOCK | LOG — the rocksdb/leveldb convention.
#pragma once

#include <cstdint>
#include <string>

#include "util/slice.h"

namespace elmo {

enum class FileType {
  kLogFile,
  kTableFile,
  kDescriptorFile,  // MANIFEST
  kCurrentFile,
  kLockFile,
  kInfoLogFile,
  kTempFile,
};

std::string LogFileName(const std::string& dbname, uint64_t number);
std::string TableFileName(const std::string& dbname, uint64_t number);
std::string DescriptorFileName(const std::string& dbname, uint64_t number);
std::string CurrentFileName(const std::string& dbname);
std::string LockFileName(const std::string& dbname);
std::string InfoLogFileName(const std::string& dbname);
std::string TempFileName(const std::string& dbname, uint64_t number);

// Parse a bare filename (no directory). Returns false if unrecognized.
bool ParseFileName(const std::string& filename, uint64_t* number,
                   FileType* type);

}  // namespace elmo
