// DB directory layout: <dbname>/NNNNNN.log | NNNNNN.sst | MANIFEST-NNNNNN
// | CURRENT | LOCK | LOG — the rocksdb/leveldb convention.
#pragma once

#include <cstdint>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace elmo {

class Env;

enum class FileType {
  kLogFile,
  kTableFile,
  kDescriptorFile,  // MANIFEST
  kCurrentFile,
  kLockFile,
  kInfoLogFile,
  kTempFile,
};

std::string LogFileName(const std::string& dbname, uint64_t number);
std::string TableFileName(const std::string& dbname, uint64_t number);
std::string DescriptorFileName(const std::string& dbname, uint64_t number);
std::string CurrentFileName(const std::string& dbname);
std::string LockFileName(const std::string& dbname);
std::string InfoLogFileName(const std::string& dbname);
std::string TempFileName(const std::string& dbname, uint64_t number);

// Parse a bare filename (no directory). Returns false if unrecognized.
bool ParseFileName(const std::string& filename, uint64_t* number,
                   FileType* type);

// Point CURRENT at MANIFEST-<descriptor_number> crash-safely: the new
// contents are written to a temp file, synced, then renamed over
// CURRENT. A crash at any instant leaves either the old or the new
// pointer — never a torn or missing one (an in-place rewrite would
// destroy the only reference to the MANIFEST).
Status SetCurrentFile(Env* env, const std::string& dbname,
                      uint64_t descriptor_number);

}  // namespace elmo
