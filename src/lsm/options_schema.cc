#include "lsm/options_schema.h"

#include <cinttypes>

#include "util/string_util.h"

namespace elmo::lsm {

std::string CompactionStyleToString(CompactionStyle style) {
  switch (style) {
    case CompactionStyle::kLevel: return "level";
    case CompactionStyle::kUniversal: return "universal";
  }
  return "level";
}

std::optional<CompactionStyle> CompactionStyleFromString(
    const std::string& s) {
  std::string t = ToLower(TrimWhitespace(s));
  if (t == "level" || t == "kcompactionstylelevel") {
    return CompactionStyle::kLevel;
  }
  if (t == "universal" || t == "kcompactionstyleuniversal") {
    return CompactionStyle::kUniversal;
  }
  return std::nullopt;
}

std::string CompressionToString(CompressionType type) {
  switch (type) {
    case CompressionType::kNoCompression: return "none";
    case CompressionType::kRleCompression: return "rle";
  }
  return "none";
}

std::optional<CompressionType> CompressionFromString(const std::string& s) {
  std::string t = ToLower(TrimWhitespace(s));
  if (t == "none" || t == "no" || t == "knocompression") {
    return CompressionType::kNoCompression;
  }
  if (t == "rle" || t == "krlecompression") {
    return CompressionType::kRleCompression;
  }
  return std::nullopt;
}

namespace {

std::string BoolToString(bool b) { return b ? "true" : "false"; }

std::string I64ToString(int64_t v) { return std::to_string(v); }
std::string U64ToString(uint64_t v) { return std::to_string(v); }
std::string DoubleToString(double v) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

// Builders keeping each registration to a few lines.
namespace {

OptionInfo BoolOpt(const char* name, const char* section, bool Options::*field,
                   bool dflt, const char* desc, bool blacklisted = false) {
  OptionInfo o;
  o.name = name;
  o.section = section;
  o.type = OptionType::kBool;
  o.default_value = BoolToString(dflt);
  o.blacklisted = blacklisted;
  o.description = desc;
  o.set = [field, name = o.name](Options* opts, const std::string& v) {
    auto b = ParseBool(v);
    if (!b.has_value()) {
      return Status::InvalidArgument(name, "expected a boolean, got '" + v + "'");
    }
    opts->*field = *b;
    return Status::OK();
  };
  o.get = [field](const Options& opts) { return BoolToString(opts.*field); };
  return o;
}

OptionInfo IntOpt(const char* name, const char* section, int Options::*field,
                  int dflt, int64_t min_v, int64_t max_v, const char* desc) {
  OptionInfo o;
  o.name = name;
  o.section = section;
  o.type = OptionType::kInt;
  o.default_value = I64ToString(dflt);
  o.min_value = min_v;
  o.max_value = max_v;
  o.description = desc;
  o.set = [field, min_v, max_v, name = o.name](Options* opts,
                                               const std::string& v) {
    auto n = ParseInt64(v);
    if (!n.has_value()) {
      return Status::InvalidArgument(name, "expected an integer, got '" + v + "'");
    }
    if (*n < min_v || *n > max_v) {
      return Status::InvalidArgument(
          name, "value " + v + " out of range [" + I64ToString(min_v) + ", " +
                    I64ToString(max_v) + "]");
    }
    opts->*field = static_cast<int>(*n);
    return Status::OK();
  };
  o.get = [field](const Options& opts) { return I64ToString(opts.*field); };
  return o;
}

OptionInfo UintOpt(const char* name, const char* section,
                   uint64_t Options::*field, uint64_t dflt, int64_t min_v,
                   int64_t max_v, const char* desc) {
  OptionInfo o;
  o.name = name;
  o.section = section;
  o.type = OptionType::kUint;
  o.default_value = U64ToString(dflt);
  o.min_value = min_v;
  o.max_value = max_v;
  o.description = desc;
  o.set = [field, min_v, max_v, name = o.name](Options* opts,
                                               const std::string& v) {
    auto n = ParseInt64(v);
    if (!n.has_value()) {
      return Status::InvalidArgument(name, "expected an integer, got '" + v + "'");
    }
    if (*n < min_v || *n > max_v) {
      return Status::InvalidArgument(
          name, "value " + v + " out of range [" + I64ToString(min_v) + ", " +
                    I64ToString(max_v) + "]");
    }
    opts->*field = static_cast<uint64_t>(*n);
    return Status::OK();
  };
  o.get = [field](const Options& opts) { return U64ToString(opts.*field); };
  return o;
}

OptionInfo DoubleOpt(const char* name, const char* section,
                     double Options::*field, double dflt, int64_t min_v,
                     int64_t max_v, const char* desc) {
  OptionInfo o;
  o.name = name;
  o.section = section;
  o.type = OptionType::kDouble;
  o.default_value = DoubleToString(dflt);
  o.min_value = min_v;
  o.max_value = max_v;
  o.description = desc;
  o.set = [field, min_v, max_v, name = o.name](Options* opts,
                                               const std::string& v) {
    auto d = ParseDouble(v);
    if (!d.has_value()) {
      return Status::InvalidArgument(name, "expected a number, got '" + v + "'");
    }
    if (*d < min_v || *d > max_v) {
      return Status::InvalidArgument(
          name, "value " + v + " out of range [" + I64ToString(min_v) + ", " +
                    I64ToString(max_v) + "]");
    }
    opts->*field = *d;
    return Status::OK();
  };
  o.get = [field](const Options& opts) {
    return DoubleToString(opts.*field);
  };
  return o;
}

}  // namespace

OptionsSchema::OptionsSchema() {
  const int64_t kMaxI = INT32_MAX;
  const int64_t kMaxBytes = 1ll << 42;  // 4 TiB ceiling on byte options

  // ----- DBOptions -----
  options_.push_back(IntOpt(
      "max_background_jobs", "DBOptions", &Options::max_background_jobs, 2, 1,
      512, "Total background flush+compaction parallelism budget."));
  options_.push_back(IntOpt(
      "max_background_flushes", "DBOptions", &Options::max_background_flushes,
      -1, -1, 64,
      "Concurrent flush jobs; -1 derives roughly jobs/4 (min 1)."));
  options_.push_back(IntOpt(
      "max_background_compactions", "DBOptions",
      &Options::max_background_compactions, -1, -1, 64,
      "Concurrent compaction jobs; -1 derives from max_background_jobs."));
  options_.push_back(IntOpt(
      "max_subcompactions", "DBOptions", &Options::max_subcompactions, 1, 1,
      64, "Split one large compaction across this many workers."));
  options_.push_back(UintOpt(
      "bytes_per_sync", "DBOptions", &Options::bytes_per_sync, 0, 0, kMaxBytes,
      "Incrementally sync SST writes every N bytes; 0 lets dirty pages "
      "accumulate until the OS forces a bursty writeback."));
  options_.push_back(UintOpt(
      "wal_bytes_per_sync", "DBOptions", &Options::wal_bytes_per_sync, 0, 0,
      kMaxBytes, "Like bytes_per_sync but for the write-ahead log."));
  options_.push_back(BoolOpt(
      "strict_bytes_per_sync", "DBOptions", &Options::strict_bytes_per_sync,
      false,
      "Enforce the sync cadence exactly (sync boundary even mid-burst)."));
  options_.push_back(UintOpt(
      "delayed_write_rate", "DBOptions", &Options::delayed_write_rate,
      16ull << 20, 1 << 10, kMaxBytes,
      "Write throughput ceiling applied during the slowdown regime."));
  options_.push_back(UintOpt(
      "compaction_readahead_size", "DBOptions",
      &Options::compaction_readahead_size, 2ull << 20, 0, 1ull << 30,
      "Sequential readahead window for compaction inputs; large values "
      "hide seek latency on spinning disks."));
  options_.push_back(IntOpt(
      "max_open_files", "DBOptions", &Options::max_open_files, -1, -1,
      kMaxI, "Table-reader handles kept open; -1 = unlimited."));
  options_.push_back(UintOpt(
      "max_total_wal_size", "DBOptions", &Options::max_total_wal_size, 0, 0,
      kMaxBytes, "Force a memtable flush once live WAL data exceeds this."));
  options_.push_back(BoolOpt(
      "enable_pipelined_write", "DBOptions", &Options::enable_pipelined_write,
      true, "Overlap WAL append and memtable insert stages."));
  options_.push_back(BoolOpt(
      "dump_malloc_stats", "DBOptions", &Options::dump_malloc_stats, true,
      "Include allocator statistics in stat dumps (small CPU cost)."));
  options_.push_back(BoolOpt(
      "paranoid_checks", "DBOptions", &Options::paranoid_checks, false,
      "Aggressive corruption checking on every read."));
  options_.push_back(UintOpt(
      "stats_dump_period_sec", "DBOptions", &Options::stats_dump_period_sec,
      600, 0, 86400, "Dump engine stats to the info log every N seconds."));
  options_.push_back(UintOpt(
      "stats_sample_interval_ms", "DBOptions",
      &Options::stats_sample_interval_ms, 0, 0, 3600000,
      "Record a telemetry time-series sample every N ms (0 = off); "
      "read back via GetProperty(\"elmo.timeseries\")."));
  options_.push_back(UintOpt(
      "stats_history_size", "DBOptions", &Options::stats_history_size, 512,
      16, 1 << 20, "Max time-series samples retained (drop-oldest ring)."));
  options_.push_back(IntOpt(
      "max_bgerror_resume_count", "DBOptions",
      &Options::max_bgerror_resume_count, 8, 0, 1024,
      "Auto-resume attempts per background-error episode before the DB "
      "degrades to read-only and waits for a manual Resume() (0 = "
      "auto-resume off)."));
  options_.push_back(UintOpt(
      "bgerror_resume_retry_interval_ms", "DBOptions",
      &Options::bgerror_resume_retry_interval_ms, 20, 1, 3600000,
      "Backoff before the first auto-resume attempt; doubles per failed "
      "attempt up to bgerror_resume_max_backoff_ms."));
  options_.push_back(UintOpt(
      "bgerror_resume_max_backoff_ms", "DBOptions",
      &Options::bgerror_resume_max_backoff_ms, 5000, 1, 3600000,
      "Cap on the exponential auto-resume backoff."));
  options_.push_back(UintOpt(
      "free_space_reserved_bytes", "DBOptions",
      &Options::free_space_reserved_bytes, 0, 0, kMaxBytes,
      "Free-space headroom: pause flushes/compactions while device free "
      "space is at or below this, resume when space frees (0 = off)."));
  options_.push_back(UintOpt(
      "free_space_poll_interval_ms", "DBOptions",
      &Options::free_space_poll_interval_ms, 100, 1, 3600000,
      "Re-poll cadence of the free-space monitor."));
  options_.push_back(BoolOpt(
      "use_direct_reads", "DBOptions", &Options::use_direct_reads, false,
      "Bypass the OS page cache for user reads."));
  options_.push_back(BoolOpt(
      "use_direct_io_for_flush_and_compaction", "DBOptions",
      &Options::use_direct_io_for_flush_and_compaction, false,
      "Bypass the OS page cache for background writes."));
  options_.push_back(BoolOpt(
      "disable_wal", "DBOptions", &Options::disable_wal, false,
      "Disable the write-ahead log entirely. Blacklisted: trades "
      "durability for benchmark speed.",
      /*blacklisted=*/true));

  // ----- CFOptions -----
  options_.push_back(UintOpt(
      "write_buffer_size", "CFOptions", &Options::write_buffer_size,
      64ull << 20, 1 << 16, kMaxBytes,
      "Memtable size before it becomes immutable and is queued to flush."));
  options_.push_back(IntOpt(
      "max_write_buffer_number", "CFOptions",
      &Options::max_write_buffer_number, 2, 2, 64,
      "Total memtables (active+immutable) before writes stop."));
  options_.push_back(IntOpt(
      "min_write_buffer_number_to_merge", "CFOptions",
      &Options::min_write_buffer_number_to_merge, 1, 1, 16,
      "Immutable memtables merged together by one flush."));
  options_.push_back(IntOpt(
      "num_levels", "CFOptions", &Options::num_levels, 7, 2, 12,
      "Depth of the LSM tree."));
  options_.push_back(IntOpt(
      "level0_file_num_compaction_trigger", "CFOptions",
      &Options::level0_file_num_compaction_trigger, 4, 1, 256,
      "L0 file count that triggers an L0->L1 compaction."));
  options_.push_back(IntOpt(
      "level0_slowdown_writes_trigger", "CFOptions",
      &Options::level0_slowdown_writes_trigger, 20, 1, 1024,
      "L0 file count at which writes are rate-limited."));
  options_.push_back(IntOpt(
      "level0_stop_writes_trigger", "CFOptions",
      &Options::level0_stop_writes_trigger, 36, 1, 4096,
      "L0 file count at which writes stop entirely."));
  options_.push_back(UintOpt(
      "max_bytes_for_level_base", "CFOptions",
      &Options::max_bytes_for_level_base, 256ull << 20, 1 << 20, kMaxBytes,
      "Target size of L1."));
  options_.push_back(DoubleOpt(
      "max_bytes_for_level_multiplier", "CFOptions",
      &Options::max_bytes_for_level_multiplier, 10.0, 2, 100,
      "Growth factor between adjacent levels."));
  options_.push_back(UintOpt(
      "target_file_size_base", "CFOptions", &Options::target_file_size_base,
      64ull << 20, 1 << 16, kMaxBytes, "SST file size target at L1."));
  options_.push_back(IntOpt(
      "target_file_size_multiplier", "CFOptions",
      &Options::target_file_size_multiplier, 1, 1, 100,
      "File size growth factor per level."));
  options_.push_back(BoolOpt(
      "level_compaction_dynamic_level_bytes", "CFOptions",
      &Options::level_compaction_dynamic_level_bytes, false,
      "Size levels downward from the last level instead of up from L1 "
      "(modern RocksDB recommendation)."));
  options_.push_back(BoolOpt(
      "disable_auto_compactions", "CFOptions",
      &Options::disable_auto_compactions, false,
      "Stop all automatic compaction (reads degrade as L0 grows)."));
  options_.push_back(UintOpt(
      "soft_pending_compaction_bytes_limit", "CFOptions",
      &Options::soft_pending_compaction_bytes_limit, 64ull << 30, 0,
      1ll << 50, "Compaction debt that triggers the write slowdown."));
  options_.push_back(UintOpt(
      "hard_pending_compaction_bytes_limit", "CFOptions",
      &Options::hard_pending_compaction_bytes_limit, 256ull << 30, 0,
      1ll << 50, "Compaction debt that stops writes."));

  // compaction_style (enum)
  {
    OptionInfo o;
    o.name = "compaction_style";
    o.section = "CFOptions";
    o.type = OptionType::kEnum;
    o.default_value = "level";
    o.enum_values = {"level", "universal"};
    o.description =
        "Leveled compaction (read-optimized) or universal/size-tiered "
        "(write-optimized).";
    o.set = [](Options* opts, const std::string& v) {
      auto style = CompactionStyleFromString(v);
      if (!style.has_value()) {
        return Status::InvalidArgument("compaction_style",
                                       "expected level|universal, got '" + v + "'");
      }
      opts->compaction_style = *style;
      return Status::OK();
    };
    o.get = [](const Options& opts) {
      return CompactionStyleToString(opts.compaction_style);
    };
    options_.push_back(std::move(o));
  }

  // compression (enum)
  {
    OptionInfo o;
    o.name = "compression";
    o.section = "CFOptions";
    o.type = OptionType::kEnum;
    o.default_value = "none";
    o.enum_values = {"none", "rle"};
    o.description = "Block compression codec.";
    o.set = [](Options* opts, const std::string& v) {
      auto c = CompressionFromString(v);
      if (!c.has_value()) {
        return Status::InvalidArgument("compression",
                                       "expected none|rle, got '" + v + "'");
      }
      opts->compression = *c;
      return Status::OK();
    };
    o.get = [](const Options& opts) {
      return CompressionToString(opts.compression);
    };
    options_.push_back(std::move(o));
  }

  // ----- TableOptions -----
  options_.push_back(UintOpt(
      "block_cache_size", "TableOptions", &Options::block_cache_size,
      8ull << 20, 0, kMaxBytes,
      "Shared uncompressed block cache capacity."));
  options_.push_back(UintOpt(
      "block_size", "TableOptions", &Options::block_size, 4096, 256,
      16ull << 20, "Uncompressed data block target size."));
  options_.push_back(IntOpt(
      "block_restart_interval", "TableOptions",
      &Options::block_restart_interval, 16, 1, 256,
      "Keys between prefix-compression restart points."));
  options_.push_back(IntOpt(
      "bloom_filter_bits_per_key", "TableOptions",
      &Options::bloom_filter_bits_per_key, 0, 0, 64,
      "Bloom filter density; 0 disables filters (default here, as in "
      "db_bench), ~10 gives a <1% false-positive rate."));
  options_.push_back(BoolOpt(
      "cache_index_and_filter_blocks", "TableOptions",
      &Options::cache_index_and_filter_blocks, false,
      "Charge index/filter blocks to the block cache instead of pinning "
      "them outside it."));

  // ----- runtime-mutable subset -----
  // Options DB::SetOptions() may change on a live DB. Everything not
  // listed here stays immutable-at-runtime (the OptionInfo default):
  // values baked into on-disk formats or open-time wiring (num_levels,
  // block_size, compaction_style, WAL switches, ...) cannot be
  // re-plumbed without a reopen. The listed subset is exactly what
  // db_impl.cc knows how to re-apply: memtable sizing, stall triggers
  // and thresholds, background parallelism, rate limits, block-cache
  // capacity, and sampler cadence.
  {
    const char* kMutable[] = {
        "write_buffer_size",
        "max_write_buffer_number",
        "level0_slowdown_writes_trigger",
        "level0_stop_writes_trigger",
        "max_background_jobs",
        "max_background_flushes",
        "max_background_compactions",
        "max_subcompactions",
        "delayed_write_rate",
        "soft_pending_compaction_bytes_limit",
        "hard_pending_compaction_bytes_limit",
        "block_cache_size",
        "stats_sample_interval_ms",
    };
    for (const char* name : kMutable) {
      for (auto& o : options_) {
        if (o.name == name) o.runtime_mutable = true;
      }
    }
  }

  // ----- deprecated names the engine refuses (LLMs love these) -----
  deprecated_ = {
      {"flush_job_count", "removed; use max_background_flushes"},
      {"max_mem_compaction_level", "removed in modern engines"},
      {"soft_rate_limit", "replaced by delayed_write_rate"},
      {"hard_rate_limit", "replaced by the stop triggers"},
      {"skip_log_error_on_recovery", "removed"},
      {"base_background_compactions", "replaced by max_background_jobs"},
      {"db_write_buffer_size_per_table", "never existed in this engine"},
  };
}

const OptionsSchema& OptionsSchema::Instance() {
  static OptionsSchema schema;
  return schema;
}

const OptionInfo* OptionsSchema::Find(const std::string& name) const {
  for (const auto& o : options_) {
    if (o.name == name) return &o;
  }
  return nullptr;
}

bool OptionsSchema::IsMutable(const std::string& name) const {
  const OptionInfo* info = Find(name);
  return info != nullptr && info->runtime_mutable;
}

std::vector<std::string> OptionsSchema::MutableNames() const {
  std::vector<std::string> names;
  for (const auto& o : options_) {
    if (o.runtime_mutable) names.push_back(o.name);
  }
  return names;
}

const DeprecatedOption* OptionsSchema::FindDeprecated(
    const std::string& name) const {
  for (const auto& d : deprecated_) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

Status OptionsSchema::Apply(Options* opts, const std::string& name,
                            const std::string& value) const {
  const OptionInfo* info = Find(name);
  if (info == nullptr) {
    const DeprecatedOption* dep = FindDeprecated(name);
    if (dep != nullptr) {
      return Status::InvalidArgument(
          name, "deprecated option (" + dep->note + ")");
    }
    return Status::InvalidArgument(name, "unknown option");
  }
  return info->set(opts, value);
}

IniDoc OptionsSchema::ToIni(const Options& opts) const {
  IniDoc doc;
  // Emit sections in a fixed order.
  for (const char* section : {"DBOptions", "CFOptions", "TableOptions"}) {
    for (const auto& o : options_) {
      if (o.section == section) {
        doc.Set(section, o.name, o.get(opts));
      }
    }
  }
  return doc;
}

std::string OptionsSchema::ToIniText(const Options& opts) const {
  return ToIni(opts).Serialize();
}

Status OptionsSchema::FromIni(const IniDoc& doc, Options* opts,
                              std::vector<std::string>* unknown,
                              std::vector<std::string>* invalid) const {
  for (const auto& section : doc.sections()) {
    for (const auto& entry : section.entries) {
      const OptionInfo* info = Find(entry.key);
      if (info == nullptr) {
        if (unknown != nullptr) unknown->push_back(entry.key);
        continue;
      }
      Status s = info->set(opts, entry.value);
      if (!s.ok() && invalid != nullptr) {
        invalid->push_back(entry.key + "=" + entry.value + ": " +
                           s.ToString());
      }
    }
  }
  return Status::OK();
}

std::string OptionsSchema::DescribeAll(const Options& current) const {
  std::string out;
  for (const auto& o : options_) {
    out += o.name + " = " + o.get(current);
    out += "   # " + o.description;
    if (o.blacklisted) out += " [LOCKED]";
    if (o.runtime_mutable) out += " [DYNAMIC]";
    out += "\n";
  }
  return out;
}

std::string OptionsSchema::DescribeMutable(const Options& current) const {
  std::string out;
  for (const auto& o : options_) {
    if (!o.runtime_mutable) continue;
    out += o.name + " = " + o.get(current);
    out += "   # " + o.description;
    if (o.type == OptionType::kInt || o.type == OptionType::kUint ||
        o.type == OptionType::kDouble) {
      out += " [" + I64ToString(o.min_value) + ", " +
             I64ToString(o.max_value) + "]";
    }
    out += "\n";
  }
  return out;
}

}  // namespace elmo::lsm
