#include "lsm/info_logger.h"

#include <utility>

namespace elmo::lsm {

DbInfoLogger::DbInfoLogger(Env* env, std::shared_ptr<Logger> tee)
    : env_(env), tee_(std::move(tee)) {}

DbInfoLogger::~DbInfoLogger() { Close(); }

Status DbInfoLogger::Open(const std::string& path) {
  std::lock_guard<std::mutex> l(mu_);
  return env_->NewWritableFile(path, &file_);
}

void DbInfoLogger::LogEvent(const std::string& event, json::Object fields) {
  const uint64_t now = env_->NowMicros();
  fields["ts_us"] = static_cast<int64_t>(now);
  fields["event"] = event;
  std::string line = json::Value(std::move(fields)).Dump();

  std::lock_guard<std::mutex> l(mu_);
  if (file_ == nullptr) return;
  line.push_back('\n');
  if (file_->Append(Slice(line)).ok()) {
    file_->Flush();
    lines_++;
  } else {
    write_failures_++;
  }
  if (tee_ != nullptr) {
    line.pop_back();
    tee_->Log(LogLevel::kDebug, "%s", line.c_str());
  }
}

void DbInfoLogger::Close() {
  std::lock_guard<std::mutex> l(mu_);
  if (file_ == nullptr) return;
  file_->Sync();
  file_->Close();
  file_.reset();
}

uint64_t DbInfoLogger::lines_written() const {
  std::lock_guard<std::mutex> l(mu_);
  return lines_;
}

uint64_t DbInfoLogger::write_failures() const {
  std::lock_guard<std::mutex> l(mu_);
  return write_failures_;
}

json::Object DbInfoLogger::FlushFields(const FlushJobInfo& info) const {
  json::Object o;
  o["imms_merged"] = info.imms_merged;
  o["file_number"] = static_cast<int64_t>(info.file_number);
  o["output_bytes"] = static_cast<int64_t>(info.output_bytes);
  o["output_level"] = info.output_level;
  o["duration_micros"] = static_cast<int64_t>(info.duration_micros);
  return o;
}

json::Object DbInfoLogger::CompactionFields(
    const CompactionJobInfo& info) const {
  json::Object o;
  o["level"] = info.level;
  o["output_level"] = info.output_level;
  o["reason"] = CompactionReasonName(info.reason);
  o["num_input_files"] = info.num_input_files;
  o["input_bytes"] = static_cast<int64_t>(info.input_bytes);
  o["num_output_files"] = info.num_output_files;
  o["output_bytes"] = static_cast<int64_t>(info.output_bytes);
  o["duration_micros"] = static_cast<int64_t>(info.duration_micros);
  o["trivial_move"] = info.trivial_move;
  return o;
}

json::Object DbInfoLogger::StallFields(const StallInfo& info) const {
  json::Object o;
  o["previous"] = StallConditionName(info.previous);
  o["current"] = StallConditionName(info.current);
  o["reason"] = StallReasonName(info.reason);
  o["wait_micros"] = static_cast<int64_t>(info.wait_micros);
  return o;
}

void DbInfoLogger::OnFlushBegin(const FlushJobInfo& info) {
  LogEvent("flush_begin", FlushFields(info));
}

void DbInfoLogger::OnFlushCompleted(const FlushJobInfo& info) {
  LogEvent("flush_end", FlushFields(info));
}

void DbInfoLogger::OnCompactionBegin(const CompactionJobInfo& info) {
  LogEvent("compaction_begin", CompactionFields(info));
}

void DbInfoLogger::OnCompactionCompleted(const CompactionJobInfo& info) {
  LogEvent("compaction_end", CompactionFields(info));
}

void DbInfoLogger::OnStallConditionChanged(const StallInfo& info) {
  LogEvent("stall_transition", StallFields(info));
}

void DbInfoLogger::OnWriteStop(const StallInfo& info) {
  LogEvent("write_stop", StallFields(info));
}

json::Object DbInfoLogger::ErrorFields(const BackgroundErrorInfo& info) const {
  json::Object o;
  o["source"] = BackgroundErrorSourceName(info.source);
  o["kind"] = BackgroundErrorKindName(info.kind);
  o["severity"] = ErrorSeverityName(info.severity);
  o["status"] = info.status.ToString();
  o["retry_count"] = info.retry_count;
  return o;
}

void DbInfoLogger::OnBackgroundError(const BackgroundErrorInfo& info) {
  LogEvent("background_error", ErrorFields(info));
}

void DbInfoLogger::OnErrorRecoveryBegin(const BackgroundErrorInfo& info) {
  json::Object o = ErrorFields(info);
  o["phase"] = "begin";
  LogEvent("error_recovery", std::move(o));
}

void DbInfoLogger::OnErrorRecoveryCompleted(const BackgroundErrorInfo& info) {
  json::Object o = ErrorFields(info);
  o["phase"] = info.status.ok() ? "resumed" : "gave_up";
  LogEvent("error_recovery", std::move(o));
}

}  // namespace elmo::lsm
