#include "lsm/table_cache.h"

#include "lsm/filename.h"
#include "util/coding.h"

namespace elmo::lsm {

TableCache::TableCache(const std::string& dbname, const Options& options,
                       const InternalKeyComparator* icmp,
                       std::shared_ptr<Cache> block_cache,
                       std::shared_ptr<BlockCacheTracer> cache_tracer,
                       int entries)
    : dbname_(dbname),
      options_(options),
      icmp_(icmp),
      block_cache_(std::move(block_cache)),
      cache_tracer_(std::move(cache_tracer)),
      // Capacity counts entries (charge 1 per table).
      cache_(NewLruCache(entries <= 0 ? (1 << 20) : entries,
                         /*num_shard_bits=*/2)) {
  if (options_.bloom_filter_bits_per_key > 0) {
    filter_policy_ = std::make_unique<BloomFilterPolicy>(
        options_.bloom_filter_bits_per_key);
  }
}

std::shared_ptr<Table> TableCache::FindTable(uint64_t file_number,
                                             uint64_t file_size, Status* s) {
  char buf[sizeof(file_number)];
  EncodeFixed64(buf, file_number);
  Slice key(buf, sizeof(buf));
  auto table = cache_->LookupAs<Table>(key);
  if (table != nullptr) {
    *s = Status::OK();
    return table;
  }

  std::string fname = TableFileName(dbname_, file_number);
  std::unique_ptr<RandomAccessFile> file;
  *s = options_.env->NewRandomAccessFile(fname, &file);
  if (!s->ok()) return nullptr;

  TableReadOptions topts;
  topts.comparator = icmp_;
  topts.filter_policy = filter_policy_.get();
  if (filter_policy_ != nullptr) {
    topts.filter_key_transform = [](const Slice& ikey) {
      return ExtractUserKey(ikey);
    };
  }
  topts.block_cache = block_cache_;
  topts.verify_checksums = options_.paranoid_checks;
  topts.cache_index_and_filter_blocks = options_.cache_index_and_filter_blocks;
  topts.file_number = file_number;
  topts.cache_tracer = cache_tracer_;

  std::unique_ptr<Table> t;
  *s = Table::Open(topts, std::move(file), file_size, &t);
  if (!s->ok()) return nullptr;

  std::shared_ptr<Table> shared(std::move(t));
  cache_->Insert(key, shared, 1);
  return shared;
}

std::unique_ptr<Iterator> TableCache::NewIterator(
    uint64_t file_number, uint64_t file_size,
    const TableIterOptions& iter_opts) {
  Status s;
  auto table = FindTable(file_number, file_size, &s);
  if (table == nullptr) {
    return NewEmptyIterator(s);
  }

  // Keep the Table alive for the iterator's lifetime.
  class TableOwningIter : public Iterator {
   public:
    TableOwningIter(std::shared_ptr<Table> table,
                    const TableIterOptions& opts)
        : table_(std::move(table)), iter_(table_->NewIterator(opts)) {}
    bool Valid() const override { return iter_->Valid(); }
    void SeekToFirst() override { iter_->SeekToFirst(); }
    void SeekToLast() override { iter_->SeekToLast(); }
    void Seek(const Slice& t) override { iter_->Seek(t); }
    void Next() override { iter_->Next(); }
    void Prev() override { iter_->Prev(); }
    Slice key() const override { return iter_->key(); }
    Slice value() const override { return iter_->value(); }
    Status status() const override { return iter_->status(); }

   private:
    std::shared_ptr<Table> table_;
    std::unique_ptr<Iterator> iter_;
  };
  return std::make_unique<TableOwningIter>(std::move(table), iter_opts);
}

Status TableCache::Get(
    uint64_t file_number, uint64_t file_size, const Slice& ikey,
    const std::function<void(const Slice&, const Slice&)>& handler,
    int level) {
  Status s;
  auto table = FindTable(file_number, file_size, &s);
  if (table == nullptr) return s;
  return table->InternalGet(ikey, handler, level);
}

void TableCache::Evict(uint64_t file_number) {
  char buf[sizeof(file_number)];
  EncodeFixed64(buf, file_number);
  cache_->Erase(Slice(buf, sizeof(buf)));
}

}  // namespace elmo::lsm
