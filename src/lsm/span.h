// Request-scoped span tracing: every foreground op (Get/Write/iterator
// Seek/Next) and background job (flush, compaction) opens a root span;
// the engine opens child spans around its interesting phases (WAL
// append/sync, memtable insert/probe, SST probe, stall waits, table
// build, manifest apply) and attaches typed annotations (bytes, files
// probed, cache hit/miss deltas, stall reason, keys skipped).
//
// Collection is always on and feeds a process-wide SpanAggregate (the
// "elmo.perf" property and the StatsSampler span columns). When a span
// trace is active (DB::StartSpanTrace), completed root trees that are
// slow (root duration >= slow_op_threshold_us) or deterministically
// sampled (every sample_every-th op of a kind) are additionally
// serialized to a CRC-framed binary file — the slow-op log that
// bench_kit/span_analyzer decomposes into p50/p99/p999 component shares
// and exports as Chrome trace-event / Perfetto JSON.
//
// File layout (same framing convention as lsm/trace.h):
//   header:  "ELMOSPN1" | fixed32 version (=1) | fixed64 base_ts_us
//   record:  fixed32 masked_crc(payload) | fixed32 payload_len | payload
//   payload: fixed64 root_start_us | fixed32 thread_id | flags (1 byte)
//            | varint32 span_count | span_count * span
//   span:    kind (1 byte) | varint32 parent_plus_1
//            | varint64 start_delta_us | varint64 duration_us
//            | varint32 n_annotations | n * (tag byte | varint64 value)
//
// Threading: the span stack is thread-local (one op per thread at a
// time). Under SimEnv, background jobs run inline inside the foreground
// write — a new root opening while another tree is suspended starts an
// independent tree; on root close, exactly the spans opened since that
// root are extracted (the outer tree cannot interleave on the same
// thread), so the flush/compaction tree is delivered separately and the
// foreground tree keeps only its own spans.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "env/env.h"
#include "util/status.h"

namespace elmo::lsm {

enum class SpanKind : uint8_t {
  // Root kinds (one per op / background job).
  kWrite = 1,
  kGet = 2,
  kIterSeek = 3,
  kIterNext = 4,
  kFlush = 5,
  kCompaction = 6,
  // Child kinds (phases inside a root).
  kWalAppend = 32,
  kWalSync = 33,
  kMemtableInsert = 34,
  kMemtableProbe = 35,
  kSstProbe = 36,
  kStallWait = 37,
  kTableBuild = 38,
  kManifestApply = 39,
};

inline constexpr uint8_t kMaxSpanKind = 40;  // one past the last kind

bool IsSpanKind(uint8_t v);
inline bool IsRootSpanKind(SpanKind k) {
  return static_cast<uint8_t>(k) < static_cast<uint8_t>(SpanKind::kWalAppend);
}
const char* SpanKindName(SpanKind k);

enum class SpanTag : uint8_t {
  kBytes = 1,        // payload bytes the span moved/returned
  kEntries = 2,      // batch entries / table entries
  kFilesProbed = 3,  // SST files consulted
  kLevel = 4,        // LSM level (compaction input, SST hit level)
  kStallReason = 5,  // StallReason enum value
  kKeysSkipped = 6,  // tombstones/shadowed versions stepped over
  kCacheHit = 7,     // block-cache hit delta during the span
  kCacheMiss = 8,    // block-cache miss delta during the span
  kHit = 9,          // 1 when the lookup found a value
  kInputBytes = 10,  // compaction input bytes
};

inline constexpr uint8_t kMaxSpanTag = 11;  // one past the last tag

bool IsSpanTag(uint8_t v);
const char* SpanTagName(SpanTag t);

// One span of a completed tree. `parent` is an index into the tree's
// span vector; -1 for the root (always index 0).
struct SpanNode {
  SpanKind kind = SpanKind::kWrite;
  int32_t parent = -1;
  uint64_t start_us = 0;  // absolute engine-clock micros
  uint64_t duration_us = 0;
  std::vector<std::pair<SpanTag, uint64_t>> annotations;
};

// Flags on a serialized tree.
inline constexpr uint8_t kSpanTreeSlow = 1;     // root >= slow threshold
inline constexpr uint8_t kSpanTreeSampled = 2;  // deterministic 1-in-N

struct SpanTree {
  uint32_t thread_id = 0;
  uint8_t flags = 0;
  std::vector<SpanNode> spans;  // spans[0] is the root

  const SpanNode& root() const { return spans[0]; }
  // Sum of the direct children's durations of span `i`.
  uint64_t ChildrenDuration(size_t i) const;
  // duration - sum(direct children): the time span `i` spent itself.
  uint64_t SelfDuration(size_t i) const;
};

// Receives completed root trees (flags not yet set). Implemented by
// SpanTracer; tests plug in their own sink.
class SpanSink {
 public:
  virtual ~SpanSink() = default;
  virtual void Consume(const SpanTree& tree) = 0;
};

// Process-wide per-kind totals, folded on every root close (tracer
// active or not). Powers GetProperty("elmo.perf") and the sampler's
// span columns. All counters are cumulative since process start.
class SpanAggregate {
 public:
  struct KindTotals {
    uint64_t count = 0;
    uint64_t total_us = 0;
    uint64_t max_us = 0;
    uint64_t bytes = 0;  // sum of kBytes annotations
  };
  struct Snapshot {
    KindTotals kinds[kMaxSpanKind] = {};
    const KindTotals& Get(SpanKind k) const {
      return kinds[static_cast<uint8_t>(k)];
    }
  };

  void Fold(const SpanTree& tree);
  Snapshot GetSnapshot() const;

  // Zero every cell. Harnesses that fingerprint their output (e.g. the
  // stress driver's deterministic report) call this at campaign start;
  // any live DB's sampler baseline becomes stale, so reset only when no
  // other DB is open in the process.
  void Reset();

  // Multi-line "span <name>: count=N total_us=N avg_us=N max_us=N
  // [bytes=N]" rendering; roots first, then child phases. Zero-count
  // kinds are omitted.
  std::string ToString() const;

 private:
  struct Cell {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> total_us{0};
    std::atomic<uint64_t> max_us{0};
    std::atomic<uint64_t> bytes{0};
  };
  Cell cells_[kMaxSpanKind];
};

// The process-wide aggregate every collector folds into. Never null.
SpanAggregate* GlobalSpanAggregate();

// Small stable per-thread ordinal (1, 2, ...) used as the trace/track
// thread id — deterministic under single-threaded SimEnv runs, unlike
// std::hash of std::thread::id.
uint32_t SpanThreadId();

// Thread-local stack of open spans. Handles are indices into an
// internal vector; kNoSpan marks a no-op handle (orphan child with no
// open root). Roots may nest (inline background work): the inner tree
// is extracted and delivered on its own close.
class SpanCollector {
 public:
  static constexpr size_t kNoSpan = static_cast<size_t>(-1);

  // Opens a root span. `sink` (may be null) receives the completed tree
  // on close, after the fold into the global aggregate.
  size_t OpenRoot(SpanKind kind, uint64_t now_us, SpanSink* sink);
  // Opens a child of the innermost open span; kNoSpan when none is open.
  size_t OpenChild(SpanKind kind, uint64_t now_us);
  void Annotate(size_t handle, SpanTag tag, uint64_t value);
  void Close(size_t handle, uint64_t now_us);

  size_t open_depth() const { return stack_.size(); }

 private:
  struct Rec {
    SpanKind kind;
    int32_t parent;  // absolute index into spans_; -1 for roots
    SpanSink* sink;  // roots only
    SpanNode node;
  };
  std::vector<Rec> spans_;
  std::vector<size_t> stack_;
};

// The calling thread's collector. Never null.
SpanCollector* GetSpanCollector();

// RAII wrapper: opens on construction, closes (and timestamps) on
// destruction. Non-copyable, stack-scoped.
class SpanScope {
 public:
  // Root span; `sink` may be null (aggregate-only collection).
  SpanScope(Env* env, SpanKind kind, SpanSink* sink)
      : env_(env),
        handle_(GetSpanCollector()->OpenRoot(kind, env->NowMicros(), sink)) {}
  // Child span; no-op when no root is open on this thread.
  SpanScope(Env* env, SpanKind kind)
      : env_(env),
        handle_(GetSpanCollector()->OpenChild(kind, env->NowMicros())) {}
  ~SpanScope() { Close(); }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  void Annotate(SpanTag tag, uint64_t value) {
    GetSpanCollector()->Annotate(handle_, tag, value);
  }
  void Close() {
    if (handle_ == SpanCollector::kNoSpan) return;
    GetSpanCollector()->Close(handle_, env_->NowMicros());
    handle_ = SpanCollector::kNoSpan;
  }

 private:
  Env* const env_;
  size_t handle_;
};

struct SpanTraceOptions {
  // Root trees with duration >= this are serialized ("slow"); 0 captures
  // every op.
  uint64_t slow_op_threshold_us = 10000;
  // Additionally serialize every Nth tree of each root kind (the
  // deterministic stand-in for reservoir sampling: same seed => same
  // capture set, byte-identical under SimEnv). 0 disables sampling.
  uint64_t sample_every = 256;
};

// Serializes selected trees to the CRC-framed span trace. One per DB;
// Start/Stop toggle it, Consume is called from the collector on every
// root close and filters by the options above.
class SpanTracer : public SpanSink {
 public:
  explicit SpanTracer(Env* env);
  ~SpanTracer() override;

  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  Status Start(const std::string& path, const SpanTraceOptions& options,
               uint64_t base_ts_us);
  // Flush+sync+close. `trees_written` (optional) receives the record
  // count. InvalidArgument when no trace is active.
  Status Stop(uint64_t* trees_written);

  bool active() const { return active_.load(std::memory_order_acquire); }
  void Consume(const SpanTree& tree) override;

  uint64_t trees_written() const;
  uint64_t slow_trees() const;
  uint64_t sampled_trees() const;

 private:
  Env* const env_;
  std::atomic<bool> active_{false};
  mutable std::mutex mu_;
  std::unique_ptr<WritableFile> file_;
  SpanTraceOptions options_;
  uint64_t seen_[kMaxSpanKind] = {};  // per-root-kind ops observed
  uint64_t trees_written_ = 0;
  uint64_t slow_trees_ = 0;
  uint64_t sampled_trees_ = 0;
};

// Reads a span trace back tree by tree.
class SpanTraceReader {
 public:
  explicit SpanTraceReader(Env* env);

  SpanTraceReader(const SpanTraceReader&) = delete;
  SpanTraceReader& operator=(const SpanTraceReader&) = delete;

  Status Open(const std::string& path);
  // Sets *eof=true (with OK status) at a clean end of file; returns
  // Corruption on a bad CRC, truncated record, or malformed payload.
  Status Next(SpanTree* tree, bool* eof);

  uint64_t base_ts_us() const { return base_ts_us_; }

 private:
  Status ReadFully(size_t n, std::string* out, bool* clean_eof);

  Env* const env_;
  std::unique_ptr<SequentialFile> file_;
  uint64_t base_ts_us_ = 0;
};

}  // namespace elmo::lsm
