// WAL / MANIFEST record-log format (leveldb): the file is a sequence of
// 32 KiB blocks; each record fragment carries a 7-byte header
// (crc32c, length, type) and records never span block trailers smaller
// than the header.
#pragma once

#include <cstdint>

namespace elmo::log {

enum RecordType {
  kZeroType = 0,  // reserved for preallocated files
  kFullType = 1,
  kFirstType = 2,
  kMiddleType = 3,
  kLastType = 4,
};
static const int kMaxRecordType = kLastType;

static const int kBlockSize = 32768;

// Header: checksum (4) + length (2) + type (1).
static const int kHeaderSize = 4 + 2 + 1;

}  // namespace elmo::log
