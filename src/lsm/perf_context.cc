#include "lsm/perf_context.h"

namespace elmo::lsm {

namespace {
thread_local PerfContext t_perf_context;
}  // namespace

PerfContext* GetPerfContext() { return &t_perf_context; }

std::string PerfContext::ToString() const {
  std::string r;
  auto emit = [&r](const char* name, uint64_t v) {
    if (v == 0) return;
    if (!r.empty()) r += ' ';
    r += name;
    r += '=';
    r += std::to_string(v);
  };
  emit("get_count", get_count);
  emit("get_memtable_hit", get_memtable_hit);
  emit("get_imm_hit", get_imm_hit);
  emit("get_sst_hit", get_sst_hit);
  emit("get_miss", get_miss);
  emit("get_files_probed", get_files_probed);
  emit("get_read_bytes", get_read_bytes);
  emit("get_micros", get_micros);
  emit("write_count", write_count);
  emit("write_batches", write_batches);
  emit("write_wal_bytes", write_wal_bytes);
  emit("write_wal_syncs", write_wal_syncs);
  emit("write_stall_micros", write_stall_micros);
  emit("write_micros", write_micros);
  emit("iter_seek_count", iter_seek_count);
  emit("iter_next_count", iter_next_count);
  emit("iter_keys_skipped", iter_keys_skipped);
  emit("iter_read_bytes", iter_read_bytes);
  emit("iter_micros", iter_micros);
  return r;
}

}  // namespace elmo::lsm
