// StatsSampler: turns the cumulative DbStats registry into a bounded
// time series. On every tick it snapshots the registry, computes the
// delta against the previous tick (StatsSnapshot::Delta), and records
// one IntervalSample — ops/s, interval p99 latencies, stall fraction,
// compaction debt, memtable memory, per-level file counts — into a ring
// of fixed capacity (drop-oldest).
//
// Ticks run on the *engine* clock: virtual time under SimEnv (the DB
// piggybacks ticks on its write/read/background paths, since no real
// thread can observe virtual time), wall time under PosixEnv/MemEnv
// (DBImpl runs a dedicated sampler thread). The ring is exposed as JSON
// through GetProperty("elmo.timeseries") — the native source of the
// paper's Fig. 3/4 throughput-over-time curves.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "lsm/stats.h"
#include "util/json.h"
#include "util/status.h"

namespace elmo::lsm {

// Instantaneous engine state the registry does not carry; filled by
// DBImpl (which can see memtables and the version tree) at tick time.
struct EngineGauges {
  uint64_t memtable_bytes = 0;  // active + immutable memtables
  int imm_count = 0;
  uint64_t pending_compaction_bytes = 0;  // compaction debt estimate
  int num_levels = 0;
  int level_files[DbStats::kMaxLevels] = {};
  uint64_t block_cache_usage = 0;  // bytes charged to the block cache
  // Active background-error severity (ErrorSeverity as int: 0 none,
  // 1 soft, 2 hard, 3 fatal).
  int bg_error_severity = 0;

  // Cumulative span-phase totals since this DB opened (DBImpl reports
  // the global aggregate minus its open-time baseline, so values are
  // per-run even though the aggregate is process-wide). The sampler
  // turns them into interval deltas.
  uint64_t span_stall_us = 0;     // kStallWait
  uint64_t span_wal_sync_us = 0;  // kWalSync
  uint64_t span_sst_probe_us = 0; // kSstProbe
  uint64_t span_memtable_us = 0;  // kMemtableInsert + kMemtableProbe
};

// One recorded interval. Counts are deltas over [ts_us - interval_us,
// ts_us]; gauges are the state at ts_us. Timestamps are engine-clock
// micros (virtual under SimEnv).
struct IntervalSample {
  uint64_t ts_us = 0;
  uint64_t interval_us = 0;

  // Interval counts / rates.
  uint64_t ops = 0;     // writes + gets
  uint64_t writes = 0;  // user write ops
  uint64_t gets = 0;    // hits + misses
  uint64_t seeks = 0;   // iterator Seek ops (not folded into `ops`)
  double ops_per_sec = 0;
  double p50_write_us = 0;  // interval percentiles, not cumulative
  double p99_write_us = 0;
  double p99_get_us = 0;
  uint64_t stall_micros = 0;
  double stall_fraction = 0;  // stall_micros / interval, clamped to 1
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t compaction_bytes_written = 0;
  uint64_t block_cache_hits = 0;    // interval delta
  uint64_t block_cache_misses = 0;  // interval delta
  uint64_t bg_errors = 0;              // interval delta, all severities
  uint64_t auto_resume_successes = 0;  // interval delta
  uint64_t auto_resume_failures = 0;   // interval delta

  // Gauges at the sample instant.
  uint64_t memtable_bytes = 0;
  int imm_count = 0;
  uint64_t pending_compaction_bytes = 0;
  int l0_files = 0;
  int num_levels = 0;
  int level_files[DbStats::kMaxLevels] = {};
  uint64_t block_cache_usage = 0;
  int bg_error_severity = 0;  // ErrorSeverity at the sample instant

  // Interval span-phase micros (deltas of the EngineGauges span fields):
  // where engine time went during this interval.
  uint64_t span_stall_us = 0;
  uint64_t span_wal_sync_us = 0;
  uint64_t span_sst_probe_us = 0;
  uint64_t span_memtable_us = 0;
};

// Per-sample JSON codec, shared by TimeSeriesToJson, the full
// `sampler_tick` LOG events and the monitor's offline replayers.
json::Object SampleToJsonObject(const IntervalSample& s);
IntervalSample SampleFromJsonValue(const json::Value& obj);

// Render a sample list as the "elmo.timeseries" JSON document:
//   {"interval_us": N, "dropped": N, "samples": [{...}, ...]}
std::string TimeSeriesToJson(uint64_t interval_us, uint64_t dropped,
                             const std::vector<IntervalSample>& samples);

// Parse a document produced by TimeSeriesToJson. Unknown fields are
// ignored; missing fields default to zero.
Status TimeSeriesFromJson(const std::string& text,
                          std::vector<IntervalSample>* samples,
                          uint64_t* interval_us = nullptr,
                          uint64_t* dropped = nullptr);

class StatsSampler {
 public:
  // `interval_us` must be > 0. `start_ts_us` anchors the first interval.
  StatsSampler(const DbStats* stats, uint64_t interval_us, size_t capacity,
               uint64_t start_ts_us);

  // Cheap lock-free pre-check for hot paths: is a sample due at `now`?
  bool Due(uint64_t now_us) const {
    return now_us >= next_due_.load(std::memory_order_relaxed);
  }

  // Record one sample covering (prev tick, now] if one is due. Returns
  // true when a sample was recorded. Thread-safe.
  bool Tick(uint64_t now_us, const EngineGauges& gauges);

  std::vector<IntervalSample> Samples() const;
  // Most recent sample; only meaningful when NumSamples() > 0.
  IntervalSample Latest() const;
  size_t NumSamples() const;
  // Samples evicted from the ring so far (drop-oldest).
  uint64_t DroppedSamples() const;
  // Ticks that arrived at least one full interval late — the sampler
  // thread (or the SimEnv piggyback sites) fell behind the configured
  // cadence. A monitor health signal, not an error.
  uint64_t LateTicks() const;
  uint64_t interval_us() const {
    return interval_us_.load(std::memory_order_relaxed);
  }

  // Retime a live sampler (DB::SetOptions changing
  // stats_sample_interval_ms). The ring and its history are preserved;
  // the next sample falls due one new interval after the last tick (or
  // immediately if that instant already passed). Thread-safe.
  void SetInterval(uint64_t interval_us, uint64_t now_us);

  std::string ToJson() const;

 private:
  const DbStats* const stats_;
  std::atomic<uint64_t> interval_us_;
  const size_t capacity_;

  std::atomic<uint64_t> next_due_;

  mutable std::mutex mu_;
  StatsSnapshot prev_;
  uint64_t prev_ts_us_;
  // Last tick's cumulative span gauges (per-DB baselined, so 0 at open).
  uint64_t prev_span_stall_us_ = 0;
  uint64_t prev_span_wal_sync_us_ = 0;
  uint64_t prev_span_sst_probe_us_ = 0;
  uint64_t prev_span_memtable_us_ = 0;
  std::deque<IntervalSample> ring_;
  uint64_t dropped_ = 0;
  uint64_t late_ticks_ = 0;
};

}  // namespace elmo::lsm
