#include "lsm/version_set.h"

#include <algorithm>

#include "fault/kill_point.h"
#include "lsm/filename.h"
#include "lsm/log_reader.h"
#include "util/logging.h"

namespace elmo::lsm {

int FindFile(const InternalKeyComparator& icmp,
             const std::vector<FileRef>& files, const Slice& key) {
  uint32_t left = 0;
  uint32_t right = static_cast<uint32_t>(files.size());
  while (left < right) {
    uint32_t mid = (left + right) / 2;
    const FileRef& f = files[mid];
    if (icmp.Compare(f->largest.Encode(), key) < 0) {
      left = mid + 1;
    } else {
      right = mid;
    }
  }
  return static_cast<int>(left);
}

static bool AfterFile(const Comparator* ucmp, const Slice* user_key,
                      const FileMetaData* f) {
  return (user_key != nullptr &&
          ucmp->Compare(*user_key, f->largest.user_key()) > 0);
}

static bool BeforeFile(const Comparator* ucmp, const Slice* user_key,
                       const FileMetaData* f) {
  return (user_key != nullptr &&
          ucmp->Compare(*user_key, f->smallest.user_key()) < 0);
}

bool SomeFileOverlapsRange(const InternalKeyComparator& icmp,
                           bool disjoint_sorted_files,
                           const std::vector<FileRef>& files,
                           const Slice* smallest_user_key,
                           const Slice* largest_user_key) {
  const Comparator* ucmp = icmp.user_comparator();
  if (!disjoint_sorted_files) {
    // Need to check against all files.
    for (const auto& f : files) {
      if (AfterFile(ucmp, smallest_user_key, f.get()) ||
          BeforeFile(ucmp, largest_user_key, f.get())) {
        // No overlap.
      } else {
        return true;
      }
    }
    return false;
  }

  // Binary search over disjoint files.
  uint32_t index = 0;
  if (smallest_user_key != nullptr) {
    InternalKey small_key(*smallest_user_key, kMaxSequenceNumber,
                          kValueTypeForSeek);
    index = FindFile(icmp, files, small_key.Encode());
  }

  if (index >= files.size()) {
    return false;
  }

  return !BeforeFile(ucmp, largest_user_key, files[index].get());
}

Version::Version(VersionSet* vset) : vset_(vset) {
  files_.resize(vset->options()->num_levels);
}

uint64_t Version::NumBytes(int level) const {
  uint64_t sum = 0;
  for (const auto& f : files_[level]) sum += f->file_size;
  return sum;
}

Status Version::Get(const ReadOptions& options, const LookupKey& k,
                    std::string* value, GetStats* stats) {
  (void)options;
  Slice ikey = k.internal_key();
  Slice user_key = k.user_key();
  const InternalKeyComparator* icmp = vset_->icmp();
  const Comparator* ucmp = icmp->user_comparator();

  bool found = false;
  bool deleted = false;
  Status status;

  auto handler = [&](const Slice& found_key, const Slice& found_value) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(found_key, &parsed)) {
      status = Status::Corruption("corrupted internal key in table");
      return;
    }
    if (ucmp->Compare(parsed.user_key, user_key) != 0) return;
    switch (parsed.type) {
      case kTypeValue:
        value->assign(found_value.data(), found_value.size());
        found = true;
        break;
      case kTypeDeletion:
        deleted = true;
        break;
    }
  };

  // Level 0: files may overlap; search newest-to-oldest.
  std::vector<FileMetaData*> l0;
  l0.reserve(files_[0].size());
  for (const auto& f : files_[0]) {
    if (ucmp->Compare(user_key, f->smallest.user_key()) >= 0 &&
        ucmp->Compare(user_key, f->largest.user_key()) <= 0) {
      l0.push_back(f.get());
    }
  }
  std::sort(l0.begin(), l0.end(), [](FileMetaData* a, FileMetaData* b) {
    return a->number > b->number;
  });
  for (FileMetaData* f : l0) {
    stats->files_probed++;
    Status s = vset_->table_cache()->Get(f->number, f->file_size, ikey,
                                         handler, /*level=*/0);
    if (!s.ok()) return s;
    if (!status.ok()) return status;
    if (found || deleted) stats->hit_level = 0;
    if (found) return Status::OK();
    if (deleted) return Status::NotFound(Slice());
  }

  // Deeper levels: disjoint files, binary search.
  for (int level = 1; level < num_levels(); level++) {
    const std::vector<FileRef>& files = files_[level];
    if (files.empty()) continue;
    int index = FindFile(*icmp, files, ikey);
    if (index >= static_cast<int>(files.size())) continue;
    const FileRef& f = files[index];
    if (ucmp->Compare(user_key, f->smallest.user_key()) < 0) continue;

    stats->files_probed++;
    Status s = vset_->table_cache()->Get(f->number, f->file_size, ikey,
                                         handler, level);
    if (!s.ok()) return s;
    if (!status.ok()) return status;
    if (found || deleted) stats->hit_level = level;
    if (found) return Status::OK();
    if (deleted) return Status::NotFound(Slice());
  }

  return Status::NotFound(Slice());
}

void Version::AddIterators(const TableIterOptions& iter_opts,
                           std::vector<std::unique_ptr<Iterator>>* iters) {
  // L0 files newest first (merge order handles shadowing via sequence
  // numbers anyway, but keep deterministic ordering).
  std::vector<FileRef> l0 = files_[0];
  std::sort(l0.begin(), l0.end(), [](const FileRef& a, const FileRef& b) {
    return a->number > b->number;
  });
  TableIterOptions level_opts = iter_opts;
  level_opts.level = 0;
  for (const auto& f : l0) {
    iters->push_back(vset_->table_cache()->NewIterator(f->number,
                                                       f->file_size,
                                                       level_opts));
  }
  for (int level = 1; level < num_levels(); level++) {
    level_opts.level = level;
    for (const auto& f : files_[level]) {
      iters->push_back(vset_->table_cache()->NewIterator(f->number,
                                                         f->file_size,
                                                         level_opts));
    }
  }
}

void Version::GetOverlappingInputs(int level, const InternalKey* begin,
                                   const InternalKey* end,
                                   std::vector<FileRef>* inputs) {
  assert(level >= 0);
  assert(level < num_levels());
  inputs->clear();
  Slice user_begin, user_end;
  if (begin != nullptr) user_begin = begin->user_key();
  if (end != nullptr) user_end = end->user_key();
  const Comparator* user_cmp = vset_->icmp()->user_comparator();
  for (size_t i = 0; i < files_[level].size();) {
    FileRef f = files_[level][i++];
    const Slice file_start = f->smallest.user_key();
    const Slice file_limit = f->largest.user_key();
    if (begin != nullptr && user_cmp->Compare(file_limit, user_begin) < 0) {
      // Entirely before range; skip.
    } else if (end != nullptr &&
               user_cmp->Compare(file_start, user_end) > 0) {
      // Entirely after range; skip.
    } else {
      inputs->push_back(f);
      if (level == 0) {
        // L0 files may overlap each other: grow the range and restart.
        if (begin != nullptr &&
            user_cmp->Compare(file_start, user_begin) < 0) {
          user_begin = file_start;
          inputs->clear();
          i = 0;
        } else if (end != nullptr &&
                   user_cmp->Compare(file_limit, user_end) > 0) {
          user_end = file_limit;
          inputs->clear();
          i = 0;
        }
      }
    }
  }
}

bool Version::OverlapInLevel(int level, const Slice* smallest_user_key,
                             const Slice* largest_user_key) {
  return SomeFileOverlapsRange(*vset_->icmp(), (level > 0), files_[level],
                               smallest_user_key, largest_user_key);
}

std::string Version::LevelSummary() const {
  std::string r = "files[ ";
  for (int level = 0; level < num_levels(); level++) {
    r += std::to_string(files_[level].size()) + " ";
  }
  r += "]";
  return r;
}

// ---------------------------------------------------------------------
// VersionBuilder: applies edits to a base version.

class VersionBuilder {
 public:
  VersionBuilder(VersionSet* vset, const Version* base)
      : vset_(vset), base_(base) {
    levels_.resize(base->num_levels());
    for (int l = 0; l < base->num_levels(); l++) {
      for (const auto& f : base->files(l)) {
        levels_[l][f->number] = f;
      }
    }
  }

  void Apply(const VersionEdit* edit) {
    for (const auto& [level, number] : edit->deleted_files_) {
      if (level < static_cast<int>(levels_.size())) {
        levels_[level].erase(number);
      }
    }
    for (const auto& [level, meta] : edit->new_files_) {
      assert(level < static_cast<int>(levels_.size()));
      auto f = std::make_shared<FileMetaData>(meta);
      levels_[level][f->number] = f;
    }
  }

  void SaveTo(Version* v) {
    const InternalKeyComparator* icmp = vset_->icmp();
    for (size_t l = 0; l < levels_.size(); l++) {
      std::vector<FileRef> files;
      files.reserve(levels_[l].size());
      for (const auto& [num, f] : levels_[l]) files.push_back(f);
      std::sort(files.begin(), files.end(),
                [icmp](const FileRef& a, const FileRef& b) {
                  int c = icmp->Compare(a->smallest.Encode(),
                                        b->smallest.Encode());
                  if (c != 0) return c < 0;
                  return a->number < b->number;
                });
#ifndef NDEBUG
      // Invariant: levels above 0 must be disjoint.
      if (l > 0) {
        for (size_t i = 1; i < files.size(); i++) {
          assert(icmp->Compare(files[i - 1]->largest.Encode(),
                               files[i]->smallest.Encode()) < 0);
        }
      }
#endif
      v->files_[l] = std::move(files);
    }
  }

 private:
  VersionSet* vset_;
  const Version* base_;
  std::vector<std::map<uint64_t, FileRef>> levels_;
};

// ---------------------------------------------------------------------
// VersionSet

VersionSet::VersionSet(const std::string& dbname, const Options* options,
                       TableCache* table_cache,
                       const InternalKeyComparator* cmp)
    : dbname_(dbname),
      options_(options),
      table_cache_(table_cache),
      icmp_(cmp),
      compact_pointer_(options->num_levels) {
  current_ = std::make_shared<Version>(this);
  Finalize(current_.get());
}

VersionSet::~VersionSet() = default;

void VersionSet::ForceNewManifest() {
  descriptor_log_.reset();
  descriptor_file_.reset();
  manifest_file_number_ = NewFileNumber();
}

Status VersionSet::LogAndApply(VersionEdit* edit) {
  if (edit->has_log_number_) {
    assert(edit->log_number_ >= log_number_);
    assert(edit->log_number_ < next_file_number_);
  } else {
    edit->SetLogNumber(log_number_);
  }
  edit->SetNextFile(next_file_number_);
  edit->SetLastSequence(last_sequence_);

  auto v = std::make_shared<Version>(this);
  {
    VersionBuilder builder(this, current_.get());
    builder.Apply(edit);
    builder.SaveTo(v.get());
  }
  Finalize(v.get());

  // Open a manifest if none yet (initial open).
  Status s;
  std::string new_manifest_file;
  if (descriptor_log_ == nullptr) {
    assert(descriptor_file_ == nullptr);
    new_manifest_file = DescriptorFileName(dbname_, manifest_file_number_);
    s = options_->env->NewWritableFile(new_manifest_file, &descriptor_file_);
    if (s.ok()) {
      descriptor_log_ = std::make_unique<log::Writer>(descriptor_file_.get());
      s = WriteSnapshot(descriptor_log_.get());
    }
  }

  if (s.ok()) {
    std::string record;
    edit->EncodeTo(&record);
    s = descriptor_log_->AddRecord(Slice(record));
    ELMO_KILL_POINT("manifest:before_sync");
    if (s.ok()) {
      s = descriptor_file_->Sync();
    }
    if (s.ok()) ELMO_KILL_POINT("manifest:after_sync");
  }

  // Install CURRENT if we created a new manifest. The MANIFEST is fully
  // synced by this point, and the swap itself is temp-file + rename so a
  // crash mid-install leaves the old pointer intact.
  if (s.ok() && !new_manifest_file.empty()) {
    s = SetCurrentFile(options_->env, dbname_, manifest_file_number_);
  }

  if (s.ok()) {
    live_versions_.push_back(current_);
    current_ = v;
    if (edit->has_log_number_) log_number_ = edit->log_number_;
  } else {
    if (!new_manifest_file.empty()) {
      descriptor_log_.reset();
      descriptor_file_.reset();
      options_->env->RemoveFile(new_manifest_file);
    }
  }
  return s;
}

Status VersionSet::Recover() {
  // Read CURRENT.
  std::string current_contents;
  Status s = options_->env->ReadFileToString(CurrentFileName(dbname_),
                                             &current_contents);
  if (!s.ok()) return s;
  if (current_contents.empty() || current_contents.back() != '\n') {
    return Status::Corruption("CURRENT file does not end with newline");
  }
  current_contents.pop_back();
  std::string dscname = dbname_ + "/" + current_contents;

  std::unique_ptr<SequentialFile> file;
  s = options_->env->NewSequentialFile(dscname, &file);
  if (!s.ok()) {
    if (s.IsNotFound()) {
      return Status::Corruption("CURRENT points to a non-existent MANIFEST",
                                dscname);
    }
    return s;
  }

  bool have_log_number = false;
  bool have_next_file = false;
  bool have_last_sequence = false;
  uint64_t next_file = 0;
  uint64_t log_number = 0;
  SequenceNumber last_sequence = 0;

  auto v = std::make_shared<Version>(this);
  VersionBuilder builder(this, v.get());

  {
    struct LogReporter : public log::Reader::Reporter {
      Status* status;
      void Corruption(size_t, const Status& s) override {
        if (status->ok()) *status = s;
      }
    };
    LogReporter reporter;
    reporter.status = &s;
    log::Reader reader(file.get(), &reporter, /*checksum=*/true,
                       /*tolerate_torn_tail=*/true);
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch) && s.ok()) {
      VersionEdit edit;
      s = edit.DecodeFrom(record);
      if (s.ok() && edit.has_comparator_ &&
          edit.comparator_ != icmp_->user_comparator()->Name()) {
        s = Status::InvalidArgument(
            edit.comparator_ + " does not match existing comparator",
            icmp_->user_comparator()->Name());
      }
      if (s.ok()) {
        builder.Apply(&edit);
      }
      if (edit.has_log_number_) {
        log_number = edit.log_number_;
        have_log_number = true;
      }
      if (edit.has_next_file_number_) {
        next_file = edit.next_file_number_;
        have_next_file = true;
      }
      if (edit.has_last_sequence_) {
        last_sequence = edit.last_sequence_;
        have_last_sequence = true;
      }
    }
  }

  if (s.ok()) {
    if (!have_next_file) {
      s = Status::Corruption("no next-file entry in MANIFEST");
    } else if (!have_log_number) {
      s = Status::Corruption("no log-number entry in MANIFEST");
    } else if (!have_last_sequence) {
      s = Status::Corruption("no last-sequence entry in MANIFEST");
    }
  }

  if (s.ok()) {
    auto installed = std::make_shared<Version>(this);
    builder.SaveTo(installed.get());
    Finalize(installed.get());
    live_versions_.push_back(current_);
    current_ = installed;
    manifest_file_number_ = next_file;
    next_file_number_ = next_file + 1;
    last_sequence_ = last_sequence;
    log_number_ = log_number;
  }
  return s;
}

void VersionSet::Finalize(Version* v) {
  int best_level = -1;
  double best_score = -1;

  const int num_levels = v->num_levels();

  // Dynamic level sizing: derive per-level targets downward from the
  // last non-empty level, the modern RocksDB scheme.
  std::vector<uint64_t> targets(num_levels, 0);
  if (options_->level_compaction_dynamic_level_bytes) {
    uint64_t last_size = v->NumBytes(num_levels - 1);
    uint64_t base = options_->max_bytes_for_level_base;
    targets[num_levels - 1] = std::max(last_size, base);
    for (int l = num_levels - 2; l >= 1; l--) {
      targets[l] = std::max<uint64_t>(
          static_cast<uint64_t>(targets[l + 1] /
                                options_->max_bytes_for_level_multiplier),
          1ull << 20);
    }
  } else {
    for (int l = 1; l < num_levels; l++) {
      targets[l] = options_->MaxBytesForLevel(l);
    }
  }

  v->level_scores_.assign(num_levels, 0.0);
  for (int level = 0; level < num_levels - 1; level++) {
    double score;
    if (level == 0) {
      score = v->NumFiles(0) /
              static_cast<double>(
                  options_->level0_file_num_compaction_trigger);
    } else {
      score = static_cast<double>(v->NumBytes(level)) /
              static_cast<double>(targets[level]);
    }
    v->level_scores_[level] = score;
    if (score > best_score) {
      best_level = level;
      best_score = score;
    }
  }

  v->compaction_level_ = best_level;
  v->compaction_score_ = best_score;
}

Status VersionSet::WriteSnapshot(log::Writer* log) {
  VersionEdit edit;
  edit.SetComparatorName(icmp_->user_comparator()->Name());
  for (int level = 0; level < current_->num_levels(); level++) {
    for (const auto& f : current_->files(level)) {
      edit.AddFile(level, f->number, f->file_size, f->smallest, f->largest);
    }
  }
  std::string record;
  edit.EncodeTo(&record);
  return log->AddRecord(Slice(record));
}

bool VersionSet::NeedsCompaction() const {
  if (options_->disable_auto_compactions) return false;
  if (options_->compaction_style == CompactionStyle::kUniversal) {
    return current_->NumFiles(0) >=
           options_->level0_file_num_compaction_trigger;
  }
  return current_->compaction_score_ >= 1;
}

int VersionSet::NumLevelFiles(int level) const {
  return current_->NumFiles(level);
}

uint64_t VersionSet::NumLevelBytes(int level) const {
  return current_->NumBytes(level);
}

uint64_t VersionSet::EstimatePendingCompactionBytes() const {
  // Sum of bytes above target on every level plus overweight L0.
  uint64_t debt = 0;
  const Version* v = current_.get();
  int trigger = options_->level0_file_num_compaction_trigger;
  if (v->NumFiles(0) > trigger) {
    uint64_t l0_bytes = v->NumBytes(0);
    debt += l0_bytes * (v->NumFiles(0) - trigger) / (v->NumFiles(0) + 1);
  }
  for (int level = 1; level < v->num_levels() - 1; level++) {
    uint64_t size = v->NumBytes(level);
    uint64_t target = options_->MaxBytesForLevel(level);
    if (size > target) debt += size - target;
  }
  return debt;
}

std::unique_ptr<Compaction> VersionSet::PickCompaction() {
  if (options_->disable_auto_compactions) return nullptr;
  if (options_->compaction_style == CompactionStyle::kUniversal) {
    return PickUniversalCompaction();
  }
  return PickLevelCompaction();
}

std::unique_ptr<Compaction> VersionSet::PickLevelCompaction() {
  if (current_->compaction_score_ < 1) return nullptr;
  const int level = current_->compaction_level_;
  assert(level >= 0);
  assert(level + 1 < current_->num_levels());

  std::unique_ptr<Compaction> c(new Compaction(options_, level, level + 1));
  c->input_version_ = current_;

  // Round-robin: pick the first file past compact_pointer_[level].
  for (const auto& f : current_->files(level)) {
    if (compact_pointer_[level].empty() ||
        icmp_->Compare(f->largest.Encode(),
                       Slice(compact_pointer_[level])) > 0) {
      c->inputs_[0].push_back(f);
      break;
    }
  }
  if (c->inputs_[0].empty() && !current_->files(level).empty()) {
    // Wrap around.
    c->inputs_[0].push_back(current_->files(level)[0]);
  }
  if (c->inputs_[0].empty()) return nullptr;

  // L0: all overlapping files must come along.
  if (level == 0) {
    InternalKey smallest = c->inputs_[0][0]->smallest;
    InternalKey largest = c->inputs_[0][0]->largest;
    current_->GetOverlappingInputs(0, &smallest, &largest, &c->inputs_[0]);
    assert(!c->inputs_[0].empty());
  }

  SetupOtherInputs(c.get());
  return c;
}

std::unique_ptr<Compaction> VersionSet::PickUniversalCompaction() {
  // Simplified size-tiered universal compaction: when the run count
  // reaches the trigger, merge every L0 run into one.
  if (current_->NumFiles(0) < options_->level0_file_num_compaction_trigger) {
    return nullptr;
  }
  std::unique_ptr<Compaction> c(
      new Compaction(options_, /*level=*/0, /*output_level=*/0));
  c->input_version_ = current_;
  c->inputs_[0] = current_->files(0);
  // Universal outputs one big run; do not cap the output file size.
  c->max_output_file_size_ = UINT64_MAX;
  return c;
}

void VersionSet::SetupOtherInputs(Compaction* c) {
  const int level = c->level();

  // Range of the level-L inputs.
  InternalKey smallest = c->inputs_[0][0]->smallest;
  InternalKey largest = c->inputs_[0][0]->largest;
  for (const auto& f : c->inputs_[0]) {
    if (icmp_->Compare(f->smallest.Encode(), smallest.Encode()) < 0) {
      smallest = f->smallest;
    }
    if (icmp_->Compare(f->largest.Encode(), largest.Encode()) > 0) {
      largest = f->largest;
    }
  }

  current_->GetOverlappingInputs(level + 1, &smallest, &largest,
                                 &c->inputs_[1]);

  // Remember where to resume next time.
  compact_pointer_[level] = largest.Encode().ToString();
}

std::unique_ptr<Compaction> VersionSet::CompactRange(int level,
                                                     const InternalKey* begin,
                                                     const InternalKey* end) {
  std::vector<FileRef> inputs;
  current_->GetOverlappingInputs(level, begin, end, &inputs);
  if (inputs.empty()) return nullptr;

  std::unique_ptr<Compaction> c(new Compaction(options_, level, level + 1));
  c->input_version_ = current_;
  c->inputs_[0] = std::move(inputs);
  SetupOtherInputs(c.get());
  return c;
}

void VersionSet::AddLiveFiles(std::set<uint64_t>* live) const {
  // Old versions pinned by in-flight readers still need their files.
  auto it = live_versions_.begin();
  while (it != live_versions_.end()) {
    if (auto v = it->lock()) {
      for (int level = 0; level < v->num_levels(); level++) {
        for (const auto& f : v->files(level)) {
          live->insert(f->number);
        }
      }
      ++it;
    } else {
      it = live_versions_.erase(it);
    }
  }
  for (int level = 0; level < current_->num_levels(); level++) {
    for (const auto& f : current_->files(level)) {
      live->insert(f->number);
    }
  }
}

// ---------------------------------------------------------------------
// Compaction

Compaction::Compaction(const Options* options, int level, int output_level)
    : level_(level),
      output_level_(output_level),
      max_output_file_size_(options->target_file_size_base),
      level_ptrs_(options->num_levels, 0) {
  // Per-level target file sizes grow by target_file_size_multiplier.
  for (int l = 1; l < output_level; l++) {
    max_output_file_size_ *= options->target_file_size_multiplier;
  }
}

bool Compaction::IsTrivialMove() const {
  if (level_ == output_level_) return false;  // universal self-merge
  return num_input_files(0) == 1 && num_input_files(1) == 0;
}

void Compaction::AddInputDeletions(VersionEdit* edit) {
  for (int which = 0; which < 2; which++) {
    for (const auto& f : inputs_[which]) {
      edit->RemoveFile(which == 0 ? level_ : output_level_, f->number);
    }
  }
}

bool Compaction::IsBaseLevelForKey(const Slice& user_key) {
  const Comparator* user_cmp =
      input_version_->vset_->icmp()->user_comparator();
  for (int lvl = output_level_ + 1; lvl < input_version_->num_levels();
       lvl++) {
    const std::vector<FileRef>& files = input_version_->files(lvl);
    while (level_ptrs_[lvl] < files.size()) {
      const FileRef& f = files[level_ptrs_[lvl]];
      if (user_cmp->Compare(user_key, f->largest.user_key()) <= 0) {
        if (user_cmp->Compare(user_key, f->smallest.user_key()) >= 0) {
          return false;  // key may be present in a deeper level
        }
        break;
      }
      level_ptrs_[lvl]++;
    }
  }
  return true;
}

uint64_t Compaction::TotalInputBytes() const {
  uint64_t total = 0;
  for (int which = 0; which < 2; which++) {
    for (const auto& f : inputs_[which]) total += f->file_size;
  }
  return total;
}

}  // namespace elmo::lsm
