// MemTable: arena-backed skip list of internal-key encoded entries.
// Reference counted (shared_ptr) because immutable memtables stay
// readable while a background flush drains them.
#pragma once

#include <memory>
#include <string>

#include "lsm/dbformat.h"
#include "lsm/skiplist.h"
#include "table/iterator.h"
#include "util/arena.h"

namespace elmo {

class MemTable {
 public:
  explicit MemTable(const InternalKeyComparator& comparator);

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  // Approximate memory consumed (drives write_buffer_size switching).
  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }

  uint64_t NumEntries() const { return num_entries_; }

  // Iterator over internal keys.
  std::unique_ptr<Iterator> NewIterator() const;

  void Add(SequenceNumber seq, ValueType type, const Slice& key,
           const Slice& value);

  // If a value for key exists, sets *value and returns true; if the key
  // has a deletion marker, sets *s to NotFound and returns true; else
  // returns false.
  bool Get(const LookupKey& key, std::string* value, Status* s) const;

  // Public so the iterator adapter in memtable.cc can name the skip-list
  // instantiation.
  struct KeyComparator {
    const InternalKeyComparator comparator;
    explicit KeyComparator(const InternalKeyComparator& c) : comparator(c) {}
    int operator()(const char* a, const char* b) const;
  };
  using Table = SkipList<const char*, KeyComparator>;

 private:
  KeyComparator comparator_;
  Arena arena_;
  Table table_;
  uint64_t num_entries_ = 0;
};

}  // namespace elmo
