// Options: every tunable knob of the engine. Names, defaults and
// semantics follow RocksDB 8.x so the paper's Table 5 option trace maps
// one-to-one. The defaults below are the paper's "Default / Iteration 0"
// column (db_bench out-of-box).
//
// The machine-readable registry of these options — types, ranges,
// deprecation and blacklist flags — lives in options_schema.h and is
// what the tuning loop's parser/safeguard consult.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "env/env.h"
#include "lsm/event_listener.h"
#include "table/cache.h"
#include "table/format.h"
#include "util/logging.h"

namespace elmo::lsm {

enum class CompactionStyle {
  kLevel = 0,      // leveled compaction (RocksDB default)
  kUniversal = 1,  // size-tiered
};

struct Options {
  // ----- memtable / write path -----
  // Size of a single memtable before it is made immutable.
  uint64_t write_buffer_size = 64ull << 20;
  // Max memtables (active + immutable) before writes stall.
  int max_write_buffer_number = 2;
  // Immutable memtables to accumulate before a flush merges them.
  int min_write_buffer_number_to_merge = 1;
  // WAL + memtable stages pipelined: overlapping their costs.
  bool enable_pipelined_write = true;
  // Force a flush once un-flushed WAL data exceeds this (0 = off).
  uint64_t max_total_wal_size = 0;

  // ----- background work -----
  // -1 means "derive from max_background_jobs" (RocksDB 8.x behavior).
  int max_background_flushes = -1;
  int max_background_compactions = -1;
  int max_background_jobs = 2;
  // Split a large compaction across this many concurrent workers.
  int max_subcompactions = 1;

  // ----- level shape / compaction -----
  CompactionStyle compaction_style = CompactionStyle::kLevel;
  int num_levels = 7;
  int level0_file_num_compaction_trigger = 4;
  int level0_slowdown_writes_trigger = 20;
  int level0_stop_writes_trigger = 36;
  uint64_t max_bytes_for_level_base = 256ull << 20;
  double max_bytes_for_level_multiplier = 10.0;
  uint64_t target_file_size_base = 64ull << 20;
  int target_file_size_multiplier = 1;
  bool level_compaction_dynamic_level_bytes = false;
  bool disable_auto_compactions = false;
  // Readahead window for compaction input reads (big sequential wins on
  // HDDs). RocksDB 8.x default: 2 MiB.
  uint64_t compaction_readahead_size = 2ull << 20;

  // ----- write slowdown / stop -----
  // Bytes/sec the writer is limited to while in the slowdown regime.
  uint64_t delayed_write_rate = 16ull << 20;
  // Stall writes when estimated pending compaction debt exceeds this.
  uint64_t soft_pending_compaction_bytes_limit = 64ull << 30;
  uint64_t hard_pending_compaction_bytes_limit = 256ull << 30;

  // ----- sync granularity -----
  // Incrementally sync SST files every N bytes while writing (0 = only
  // at file completion). Smooths writeback bursts.
  uint64_t bytes_per_sync = 0;
  // Same for WAL files.
  uint64_t wal_bytes_per_sync = 0;
  bool strict_bytes_per_sync = false;

  // ----- tables / cache / filters -----
  uint64_t block_cache_size = 8ull << 20;  // db_bench default: 8 MiB
  uint64_t block_size = 4096;
  int block_restart_interval = 16;
  // <= 0 disables bloom filters (db_bench default).
  int bloom_filter_bits_per_key = 0;
  bool cache_index_and_filter_blocks = false;
  CompressionType compression = CompressionType::kNoCompression;
  // Max open table files cached (-1 = unlimited).
  int max_open_files = -1;
  // Direct I/O: bypass the OS page cache for user/compaction reads.
  bool use_direct_reads = false;
  bool use_direct_io_for_flush_and_compaction = false;

  // ----- diagnostics / misc -----
  bool dump_malloc_stats = true;
  bool paranoid_checks = false;
  // Dump engine statistics to the info log every N seconds (0 = off).
  uint64_t stats_dump_period_sec = 600;
  // Record an IntervalSample (ops/s, interval p99s, stall fraction,
  // compaction debt, per-level files) every N milliseconds of engine
  // time; exposed via GetProperty("elmo.timeseries"). 0 = sampler off.
  uint64_t stats_sample_interval_ms = 0;
  // Ring capacity of the time-series sampler: at most this many
  // intervals are retained (oldest dropped, drop count reported).
  uint64_t stats_history_size = 512;
  // WAL: globally disabling the journal is possible here but the tuning
  // framework blacklists it (losing durability to win a benchmark is
  // exactly the failure mode the Safeguard Enforcer exists for).
  bool disable_wal = false;

  // ----- error handling & self-healing (see error_handler.h) -----
  // Auto-resume attempts per error episode before a soft error
  // escalates to read-only degraded mode (0 = auto-resume off; only a
  // manual DB::Resume() recovers).
  int max_bgerror_resume_count = 8;
  // Backoff before the first auto-resume attempt; doubles per failed
  // attempt up to the max. Engine-clock time, so deterministic under
  // SimEnv.
  uint64_t bgerror_resume_retry_interval_ms = 20;
  uint64_t bgerror_resume_max_backoff_ms = 5000;
  // Free-space headroom (SstFileManager-lite): while the device's free
  // space sits at or below this, flushes and compactions are paused (a
  // soft NoSpace state) and resume when space frees. 0 = monitor off.
  uint64_t free_space_reserved_bytes = 0;
  // How often the free-space monitor re-polls Env::GetFreeSpace.
  uint64_t free_space_poll_interval_ms = 100;

  // ----- non-tunable wiring (not part of the options file) -----
  Env* env = nullptr;  // defaults to Env::Posix() at Open
  std::shared_ptr<Logger> info_log;
  // At Open, replay the runtime-mutable options recorded in the DB's
  // latest OPTIONS file over the supplied options — so a DB whose
  // configuration was changed live via DB::SetOptions() reopens with
  // the last applied values after a crash or restart. Off by default:
  // explicitly supplied options win unless the caller opts in.
  bool recover_persisted_options = false;
  // Feed each IntervalSample through the health monitor (anomaly /
  // phase-shift detection + root-cause diagnosis, see src/monitor/).
  // Only active when the sampler itself is on. Results surface via
  // GetProperty("elmo.health") and "health" LOG events.
  bool enable_health_monitor = true;
  // When non-empty, rewrite this file with a Prometheus text-exposition
  // snapshot of tickers/gauges/histogram quantiles on every sampler tick
  // (and once at close). Written through the raw Env, so it never
  // pollutes IO traces.
  std::string metrics_export_path;
  bool create_if_missing = true;
  bool error_if_exists = false;
  // Observers of flush/compaction/stall events (see event_listener.h).
  // Callbacks run synchronously on engine threads with the DB mutex
  // held; they must be cheap and must not call back into the DB.
  std::vector<std::shared_ptr<EventListener>> listeners;

  // Resolved background slot counts (RocksDB 8.x derivation: a quarter
  // of max_background_jobs flush, the rest compact, at least one each).
  int ResolvedFlushSlots() const {
    if (max_background_flushes > 0) return max_background_flushes;
    int n = max_background_jobs / 4;
    return n < 1 ? 1 : n;
  }
  int ResolvedCompactionSlots() const {
    if (max_background_compactions > 0) return max_background_compactions;
    int n = max_background_jobs - ResolvedFlushSlots();
    return n < 1 ? 1 : n;
  }

  // Memory the configuration pins: block cache + worst-case memtables.
  // SimEnv subtracts this from the machine's budget for its page-cache
  // model; the prompt generator reports it to the LLM.
  uint64_t ConfiguredMemoryFootprint() const {
    return block_cache_size +
           write_buffer_size * static_cast<uint64_t>(max_write_buffer_number);
  }

  // Bytes a level may hold before compaction from it is triggered.
  uint64_t MaxBytesForLevel(int level) const;
};

struct ReadOptions {
  bool verify_checksums = false;
  bool fill_cache = true;
  // Non-null: read as of this snapshot (sequence number).
  const class Snapshot* snapshot = nullptr;
};

struct WriteOptions {
  // fsync the WAL before acknowledging the write.
  bool sync = false;
  // Skip the WAL entirely for this write (data is lost on crash until
  // the memtable flushes).
  bool disable_wal = false;
};

}  // namespace elmo::lsm
