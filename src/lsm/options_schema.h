// OptionsSchema: the machine-readable registry of every tunable option.
// One definition per option — name, section, type, default, legal range,
// deprecation and blacklist flags, a prose description (fed to the LLM
// prompt), and the binding into the Options struct.
//
// Everything that touches option *text* goes through this table: the
// options-file serializer/parser, the LLM response evaluator, and the
// Safeguard Enforcer's hallucination / deprecation / blacklist checks.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "lsm/options.h"
#include "util/ini.h"
#include "util/status.h"

namespace elmo::lsm {

enum class OptionType { kBool, kInt, kUint, kDouble, kEnum };

struct OptionInfo {
  std::string name;
  std::string section;  // "DBOptions" | "CFOptions" | "TableOptions"
  OptionType type = OptionType::kInt;
  std::string default_value;
  // Range for numeric types (inclusive). Ignored for bool/enum.
  int64_t min_value = 0;
  int64_t max_value = 0;
  std::vector<std::string> enum_values;
  // The Safeguard Enforcer refuses changes to blacklisted options.
  bool blacklisted = false;
  // True when DB::SetOptions() can change the option on a live DB; the
  // constructor marks the mutable subset explicitly, everything else is
  // immutable-at-runtime (open-time only). Every entry is one or the
  // other by construction — tests enforce the partition.
  bool runtime_mutable = false;
  std::string description;

  std::function<Status(Options*, const std::string&)> set;
  std::function<std::string(const Options&)> get;
};

// An option name that older engine versions / blog posts used but this
// version does not accept (the paper notes LLMs fixate on these).
struct DeprecatedOption {
  std::string name;
  std::string note;  // e.g. "replaced by max_background_jobs"
};

class OptionsSchema {
 public:
  static const OptionsSchema& Instance();

  const std::vector<OptionInfo>& all() const { return options_; }
  const std::vector<DeprecatedOption>& deprecated() const {
    return deprecated_;
  }

  // Exact-name lookup; nullptr when unknown.
  const OptionInfo* Find(const std::string& name) const;
  const DeprecatedOption* FindDeprecated(const std::string& name) const;

  // True when `name` exists and can be changed on a live DB via
  // DB::SetOptions().
  bool IsMutable(const std::string& name) const;
  // Names of every runtime-mutable option, in registration order.
  std::vector<std::string> MutableNames() const;

  // Validate + apply one value. Errors: unknown option, type mismatch,
  // out of range.
  Status Apply(Options* opts, const std::string& name,
               const std::string& value) const;

  // Serialize to a RocksDB-style options file (sections DBOptions /
  // CFOptions / TableOptions).
  IniDoc ToIni(const Options& opts) const;
  std::string ToIniText(const Options& opts) const;

  // Parse an options document. Unknown keys are collected into
  // *unknown (never applied); values that fail validation are collected
  // into *invalid as "name=value: reason".
  Status FromIni(const IniDoc& doc, Options* opts,
                 std::vector<std::string>* unknown = nullptr,
                 std::vector<std::string>* invalid = nullptr) const;

  // Render "name = value  # description [range]" lines for the prompt.
  std::string DescribeAll(const Options& current) const;

  // Same rendering restricted to the runtime-mutable subset; feeds the
  // online tuner's "live delta" prompt section.
  std::string DescribeMutable(const Options& current) const;

 private:
  OptionsSchema();

  std::vector<OptionInfo> options_;
  std::vector<DeprecatedOption> deprecated_;
};

// Helpers shared with the bench harness / elmo framework.
std::string CompactionStyleToString(CompactionStyle style);
std::optional<CompactionStyle> CompactionStyleFromString(
    const std::string& s);
std::string CompressionToString(CompressionType type);
std::optional<CompressionType> CompressionFromString(const std::string& s);

}  // namespace elmo::lsm
