// ErrorHandler: classified, recoverable background-error states — the
// replacement for the old sticky `bg_error_`. Every background failure
// is classified by source (WAL append/sync, flush, compaction,
// MANIFEST) and kind (retryable IOError, NoSpace, Corruption, hard
// failure) into a severity:
//
//   * soft  — writes stall, reads keep serving; background work is
//             paused and retried with capped exponential backoff.
//   * hard  — read-only degraded mode: Get/iterators keep serving,
//             writes fail fast with a clear Status instead of hanging.
//             Recoverable kinds still auto-resume (re-sync WAL/MANIFEST
//             first); others wait for a manual DB::Resume().
//   * fatal — the on-disk state can no longer be trusted (Corruption,
//             unrecoverable WAL/MANIFEST failure); reopen required.
//
// The class itself is a pure deterministic state machine: no clock
// reads, no threads, no locks. DBImpl drives it under the DB mutex,
// passing engine-clock timestamps in — so same-seed SimEnv runs replay
// byte-identical recovery timelines. Listener callbacks, LOG events,
// condition-variable wakeups and the actual resume work (WAL switch,
// MANIFEST re-sync, flush/compaction rescheduling) stay in DBImpl.
#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace elmo::lsm {

// Where the failed operation sat in the engine.
enum class BackgroundErrorSource : int {
  kWalAppend = 0,
  kWalSync,
  kFlush,
  kCompaction,
  kManifest,
};

// What failed, derived from the Status alone.
enum class BackgroundErrorKind : int {
  kRetryableIOError = 0,  // transient by contract: auto-resume
  kNoSpace,               // clears when space frees: auto-resume
  kCorruption,            // data cannot be trusted: fatal
  kHardFailure,           // permanent media/logic failure: manual only
};

enum class ErrorSeverity : int {
  kNone = 0,
  kSoft,
  kHard,
  kFatal,
};

const char* BackgroundErrorSourceName(BackgroundErrorSource s);
const char* BackgroundErrorKindName(BackgroundErrorKind k);
const char* ErrorSeverityName(ErrorSeverity s);

// The classification matrix (pure; the golden test pins every cell):
//   Corruption                  -> fatal   (any source)
//   NoSpace                     -> soft    (resume gated on free space)
//   retryable IOError           -> soft    for flush/compaction
//                                  hard    for WAL/MANIFEST
//   hard failure                -> hard    for flush/compaction
//                                  fatal   for WAL/MANIFEST
BackgroundErrorKind ClassifyBackgroundErrorKind(const Status& s);
ErrorSeverity ClassifyBackgroundError(BackgroundErrorSource source,
                                      BackgroundErrorKind kind);

struct ErrorHandlerConfig {
  // Auto-resume attempts before a soft error escalates to hard (and a
  // hard recoverable error stops retrying). 0 disables auto-resume.
  int max_auto_resume_retries = 8;
  // First retry fires this long after the failure; each failed attempt
  // doubles the wait, capped at `max_backoff_us`.
  uint64_t base_backoff_us = 20 * 1000;
  uint64_t max_backoff_us = 5 * 1000 * 1000;
};

class ErrorHandler {
 public:
  explicit ErrorHandler(const ErrorHandlerConfig& config)
      : config_(config) {}

  // Everything below REQUIRES the DB mutex (DBImpl::mu_).

  struct State {
    ErrorSeverity severity = ErrorSeverity::kNone;
    BackgroundErrorSource source = BackgroundErrorSource::kFlush;
    BackgroundErrorKind kind = BackgroundErrorKind::kHardFailure;
    Status cause;            // the original failure
    int retry_count = 0;     // auto-resume attempts this episode
    uint64_t error_ts_us = 0;
    uint64_t next_retry_at_us = 0;  // 0 = no retry scheduled
    bool auto_recoverable = false;  // a retry is (still) scheduled
    bool recovery_began = false;    // OnErrorRecoveryBegin fired
  };

  // Record a classified failure at engine time `now_us`. An error
  // arriving while one is already active only replaces it when strictly
  // more severe; the retry budget spans the whole episode (it resets
  // only on successful recovery), so a failing retry cannot re-arm
  // itself forever. Returns true when the visible state changed (the
  // caller then fires listeners / logs / wakes writers).
  bool SetBGError(BackgroundErrorSource source, const Status& s,
                  uint64_t now_us);

  bool ok() const { return state_.severity == ErrorSeverity::kNone; }
  ErrorSeverity severity() const { return state_.severity; }
  const State& state() const { return state_; }

  // Status a foreground writer sees. OK while healthy; soft errors
  // return OK too — the write path stalls on them instead of failing.
  // Hard/fatal return a fail-fast, self-describing error.
  Status WriteStatus() const;
  // Non-OK whenever any error state is active; gates background
  // scheduling exactly like the old sticky bg_error_.
  Status BackgroundWorkStatus() const { return state_.cause; }

  // True when an auto-resume attempt is due at `now_us`.
  bool ResumeDue(uint64_t now_us) const {
    return state_.auto_recoverable && state_.next_retry_at_us != 0 &&
           now_us >= state_.next_retry_at_us;
  }
  // Earliest engine time the next attempt may run (0 = none scheduled).
  uint64_t next_retry_at_us() const { return state_.next_retry_at_us; }

  // An attempt is starting (auto or manual). Charges one retry.
  // Returns the attempt ordinal (1-based).
  int OnResumeAttemptStart();
  // The attempt repaired the engine: close the episode.
  void OnResumeSucceeded();
  // The attempt failed at `now_us`: double the backoff, or — budget
  // exhausted — escalate soft -> hard and stop auto-retrying.
  // Returns true when the visible state changed (escalation).
  bool OnResumeFailed(const Status& s, uint64_t now_us);

  // A later background success (flush/compaction completed) proves the
  // engine healthy again; forgets the episode's retry history.
  void NoteBackgroundWorkSuccess() {
    if (ok()) episode_retries_ = 0;
  }

  // Lifetime counters (exported as Prometheus counters by the DB).
  uint64_t errors_seen(ErrorSeverity s) const {
    return errors_seen_[static_cast<int>(s)];
  }
  uint64_t resume_successes() const { return resume_successes_; }
  uint64_t resume_failures() const { return resume_failures_; }

 private:
  uint64_t BackoffFor(int retry) const;

  const ErrorHandlerConfig config_;
  State state_;
  // Retries consumed this episode; survives SetBGError re-entry so a
  // retried job that fails again keeps consuming the same budget.
  int episode_retries_ = 0;

  uint64_t errors_seen_[4] = {};  // indexed by ErrorSeverity
  uint64_t resume_successes_ = 0;
  uint64_t resume_failures_ = 0;
};

}  // namespace elmo::lsm
