#include "lsm/options.h"

namespace elmo::lsm {

uint64_t Options::MaxBytesForLevel(int level) const {
  // Level 0 is governed by file count, not bytes; callers should not ask.
  uint64_t result = max_bytes_for_level_base;
  for (int l = 1; l < level; l++) {
    result = static_cast<uint64_t>(result * max_bytes_for_level_multiplier);
  }
  return result;
}

}  // namespace elmo::lsm
