// VirtualStallState: the virtual-time view of background progress used
// when the DB runs on SimEnv (see DESIGN.md §4.1).
//
// Background jobs execute EAGERLY (engine state is always real), but
// each job is assigned a completion timestamp on the simulated core
// lanes. This class replays those completions against the virtual clock
// so the write path can ask "how many immutable memtables / L0 files
// exist *at virtual time t*" — which is what RocksDB's stall conditions
// actually gate on.
#pragma once

#include <cstdint>
#include <map>
#include <queue>
#include <vector>

namespace elmo::lsm {

class VirtualStallState {
 public:
  // A memtable became immutable at virtual time `now`.
  void OnMemtableSwitch() { imm_count_++; }

  // A flush merging `imms_merged` immutable memtables and producing
  // `l0_outputs` L0 files will complete at `completion`.
  void OnFlushScheduled(int imms_merged, int l0_outputs,
                        uint64_t completion) {
    events_.push(Event{completion, -imms_merged, l0_outputs});
  }

  // A compaction consuming `l0_consumed` L0 files and producing
  // `l0_produced` new L0 files (universal style) completes at
  // `completion`.
  void OnCompactionScheduled(int l0_consumed, int l0_produced,
                             uint64_t completion) {
    if (l0_consumed == 0 && l0_produced == 0) return;
    events_.push(Event{completion, 0, l0_produced - l0_consumed});
  }

  // Apply every event with completion <= now.
  void ProcessUntil(uint64_t now) {
    while (!events_.empty() && events_.top().when <= now) {
      const Event& e = events_.top();
      imm_count_ += e.imm_delta;
      l0_count_ += e.l0_delta;
      events_.pop();
    }
    if (imm_count_ < 0) imm_count_ = 0;
    if (l0_count_ < 0) l0_count_ = 0;
  }

  int imm_count() const { return imm_count_; }
  int l0_count() const { return l0_count_; }

  // Earliest pending completion after `now`; `now` when none pending.
  uint64_t NextEventAfter(uint64_t now) const {
    return events_.empty() ? now : std::max(now, events_.top().when);
  }

  bool HasPendingEvents() const { return !events_.empty(); }

  // Seed the L0 count at DB open (recovered files exist at t=0).
  void SetInitialL0(int n) { l0_count_ = n; }

  // --- per-file availability, for compaction input dependencies ---
  void SetFileAvailableAt(uint64_t file_number, uint64_t when) {
    file_avail_[file_number] = when;
  }
  uint64_t FileAvailableAt(uint64_t file_number) const {
    auto it = file_avail_.find(file_number);
    return it == file_avail_.end() ? 0 : it->second;
  }
  void ForgetFile(uint64_t file_number) { file_avail_.erase(file_number); }

 private:
  struct Event {
    uint64_t when;
    int imm_delta;
    int l0_delta;
    bool operator>(const Event& o) const { return when > o.when; }
  };

  int imm_count_ = 0;
  int l0_count_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  std::map<uint64_t, uint64_t> file_avail_;
};

}  // namespace elmo::lsm
