// OPTIONS-file persistence, RocksDB style: the engine writes its active
// configuration to <dbname>/OPTIONS-<number> at open, and tooling (the
// tuning loop) can load, edit and re-save configurations. This is the
// artifact ELMo-Tune reads, rewrites and hands back to the store.
#pragma once

#include <string>
#include <vector>

#include "env/env.h"
#include "lsm/options.h"
#include "util/status.h"

namespace elmo::lsm {

// Serialize `options` to `path` (schema-driven INI with a header).
Status SaveOptionsFile(Env* env, const std::string& path,
                       const Options& options);

// Parse the file at `path` into *options (on top of current values).
// Unknown keys and invalid values are reported, not fatal, mirroring
// RocksDB's ignore_unknown_options loading mode.
Status LoadOptionsFile(Env* env, const std::string& path, Options* options,
                       std::vector<std::string>* unknown = nullptr,
                       std::vector<std::string>* invalid = nullptr);

// Name of an options file inside a DB directory.
std::string OptionsFileName(const std::string& dbname, uint64_t number);

// Latest OPTIONS-<number> in the DB dir; empty if none.
std::string FindLatestOptionsFile(Env* env, const std::string& dbname);

}  // namespace elmo::lsm
