// Workload trace capture and reading. StartTrace() on a DB hooks the
// write and read paths and appends one record per user operation — op
// kind, key, value size (not the value: traces stay small and replay
// regenerates values deterministically), engine-clock timestamp, and the
// issuing thread — to a CRC-framed binary file written through the Env.
// bench_kit::ReplayTrace re-executes a trace against a fresh DB, either
// as fast as possible or with the recorded inter-op gaps preserved.
//
// File layout:
//   header:  "ELMOTRC1" | fixed32 version (=1) | fixed64 base_ts_us
//   record:  fixed32 masked_crc(payload) | fixed32 payload_len | payload
//   payload: op (1 byte) | fixed64 ts_us | fixed32 thread_id
//            | varint32 key_len | key bytes | varint32 value_size
// A torn or bit-flipped record fails its CRC and surfaces as
// Status::Corruption from TraceReader::Next.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "env/env.h"
#include "util/status.h"

namespace elmo::lsm {

enum class TraceOp : uint8_t {
  kPut = 1,
  kDelete = 2,
  kGet = 3,
};

struct TraceRecord {
  TraceOp op = TraceOp::kPut;
  uint64_t ts_us = 0;  // engine clock at capture time
  uint32_t thread_id = 0;
  std::string key;
  uint32_t value_size = 0;  // 0 for deletes and gets
};

class TraceWriter {
 public:
  explicit TraceWriter(Env* env);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  // Create/truncate the trace file and write the header. `base_ts_us`
  // anchors replay timing (normally the engine clock at StartTrace).
  Status Open(const std::string& path, uint64_t base_ts_us);

  Status AddRecord(TraceOp op, uint64_t ts_us, uint32_t thread_id,
                   const Slice& key, uint32_t value_size);

  // Flush+sync+close. Idempotent; safe after a failed Open.
  Status Close();

  uint64_t records() const;

 private:
  Env* const env_;
  mutable std::mutex mu_;
  std::unique_ptr<WritableFile> file_;
  uint64_t records_ = 0;
};

class TraceReader {
 public:
  explicit TraceReader(Env* env);

  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  // Open and validate the header.
  Status Open(const std::string& path);

  // Read the next record. Sets *eof=true (with OK status) at a clean end
  // of file; returns Corruption on a bad CRC or truncated record.
  Status Next(TraceRecord* rec, bool* eof);

  uint64_t base_ts_us() const { return base_ts_us_; }

 private:
  Status ReadFully(size_t n, std::string* out, bool* clean_eof);

  Env* const env_;
  std::unique_ptr<SequentialFile> file_;
  uint64_t base_ts_us_ = 0;
};

}  // namespace elmo::lsm
