#pragma once

#include <cstdint>

#include "env/env.h"
#include "lsm/log_format.h"
#include "util/slice.h"
#include "util/status.h"

namespace elmo::log {

class Writer {
 public:
  // Does not take ownership of dest (must remain live while in use).
  explicit Writer(WritableFile* dest);
  // For reopening a log: dest_length is the current file length.
  Writer(WritableFile* dest, uint64_t dest_length);

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  Status AddRecord(const Slice& slice);

  // Total bytes appended through this writer (used by
  // wal_bytes_per_sync bookkeeping in the DB).
  uint64_t BytesWritten() const { return bytes_written_; }

 private:
  Status EmitPhysicalRecord(RecordType type, const char* ptr, size_t length);

  WritableFile* dest_;
  int block_offset_ = 0;  // current offset in block
  uint64_t bytes_written_ = 0;

  // Precomputed crc32c of the type byte for each record type.
  uint32_t type_crc_[kMaxRecordType + 1];
};

}  // namespace elmo::log
