// DB: the public interface of the elmo LSM key-value store — the
// from-scratch substrate standing in for RocksDB 8.8.1 in this
// reproduction (see DESIGN.md §1).
//
// Quickstart:
//   elmo::lsm::Options options;
//   options.create_if_missing = true;
//   std::unique_ptr<elmo::lsm::DB> db;
//   auto s = elmo::lsm::DB::Open(options, "/tmp/db", &db);
//   db->Put({}, "key", "value");
//   std::string value;
//   s = db->Get({}, "key", &value);
#pragma once

#include <map>
#include <memory>
#include <string>

#include "lsm/options.h"
#include "lsm/span.h"
#include "lsm/stats.h"
#include "lsm/write_batch.h"
#include "table/iterator.h"
#include "util/slice.h"
#include "util/status.h"

namespace elmo::lsm {

// A read-consistent point in time; obtained from GetSnapshot.
class Snapshot {
 public:
  virtual ~Snapshot() = default;
};

class DB {
 public:
  // Opens (creating per options.create_if_missing) the database at
  // `name`.
  static Status Open(const Options& options, const std::string& name,
                     std::unique_ptr<DB>* dbptr);

  // Deletes all persistent state of the database at `name`.
  static Status DestroyDB(const std::string& name, const Options& options);

  DB() = default;
  virtual ~DB() = default;

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  virtual Status Put(const WriteOptions& options, const Slice& key,
                     const Slice& value) = 0;
  virtual Status Delete(const WriteOptions& options, const Slice& key) = 0;
  virtual Status Write(const WriteOptions& options, WriteBatch* updates) = 0;
  virtual Status Get(const ReadOptions& options, const Slice& key,
                     std::string* value) = 0;

  // Iterator over the whole DB; honors options.snapshot.
  virtual std::unique_ptr<Iterator> NewIterator(
      const ReadOptions& options) = 0;

  // Change runtime-mutable options on the live DB. Every (name, value)
  // pair is validated against the options schema first — unknown names,
  // immutable-at-runtime options, ill-typed or out-of-range values all
  // fail with InvalidArgument and NOTHING is applied (all-or-nothing).
  // On success the new values take effect atomically under the DB
  // mutex: the block cache is resized, stall thresholds re-armed, the
  // slowdown rate limiter re-rated, background parallelism re-plumbed,
  // the sampler cadence retimed, and waiting work woken. The call
  // records an "options_change" event in the JSONL LOG, bumps the
  // Ticker::kOptionsChanges counter, and rewrites the OPTIONS file so a
  // reopen (with Options::recover_persisted_options) resumes from the
  // last applied configuration. See OptionsSchema::MutableNames() for
  // the mutable subset.
  virtual Status SetOptions(
      const std::map<std::string, std::string>& changes) = 0;

  virtual const Snapshot* GetSnapshot() = 0;
  virtual void ReleaseSnapshot(const Snapshot* snapshot) = 0;

  // Supported properties:
  //   "elmo.stats"                       full telemetry dump: tickers,
  //                                      stall reasons, latency/size
  //                                      histograms, per-level table
  //   "elmo.levelstats"                  per-level files/bytes/score/
  //                                      read/write/amp table
  //   "elmo.levelsummary"                file count per level
  //   "elmo.num-files-at-level<N>"
  //   "elmo.estimate-pending-compaction-bytes"
  //   "elmo.block-cache-usage"
  //   "elmo.block-cache-hit-rate"
  //   "elmo.options"                     active options file text
  //   "elmo.perf"                        process-aggregated span
  //                                      breakdown: per-op and per-phase
  //                                      count/total/avg/max micros (see
  //                                      lsm/span.h SpanAggregate)
  //   "elmo.timeseries"                  JSON time series recorded by the
  //                                      StatsSampler (enabled via
  //                                      options.stats_sample_interval_ms):
  //                                      {"interval_us":N,"dropped":N,
  //                                       "samples":[{...}, ...]}
  //   "elmo.health"                      JSON health verdict from the
  //                                      live monitor (status, anomalies,
  //                                      ranked diagnoses); {"status":
  //                                      "disabled"} when the sampler or
  //                                      monitor is off
  //   "elmo.prometheus"                  Prometheus text exposition of
  //                                      tickers/gauges/quantiles (same
  //                                      content as metrics_export_path)
  //   "elmo.options_changes"             JSON ledger of applied dynamic
  //                                      option changes: {"count":N,
  //                                      "changes":[{"ts_us":..,
  //                                      "source":..,"deltas":[{"name":
  //                                      ..,"from":..,"to":..}]}]}
  //   "elmo.bg_error"                    JSON background-error state:
  //                                      {"severity":"none|soft|hard|
  //                                      fatal", and while degraded
  //                                      "source","kind","cause",
  //                                      "retry_count","auto_recoverable",
  //                                      "next_retry_at_us"} plus lifetime
  //                                      resume success/failure counts
  virtual bool GetProperty(const Slice& property, std::string* value) = 0;

  // Compact the key range [*begin, *end]; null means open-ended.
  virtual Status CompactRange(const Slice* begin, const Slice* end) = 0;

  // Approximate on-disk bytes used by each key range [begin, end).
  struct Range {
    Slice start;
    Slice limit;
    Range(const Slice& s, const Slice& l) : start(s), limit(l) {}
  };
  virtual void GetApproximateSizes(const Range* ranges, int n,
                                   uint64_t* sizes) = 0;

  // Flush the active memtable and wait for it to land in L0.
  virtual Status FlushMemTable() = 0;

  // Block until all scheduled background work has settled.
  virtual Status WaitForBackgroundWork() = 0;

  // Manually recover from a background error state (see
  // lsm/error_handler.h). Soft/hard errors are retried immediately —
  // re-syncing the WAL/MANIFEST and re-scheduling paused flushes and
  // compactions on success; while degraded, reads keep serving and
  // writes fail fast with a self-describing Status. Returns OK when the
  // DB is healthy (or was already), the blocking error otherwise; fatal
  // errors always fail (reopen required). No-op on a healthy DB.
  virtual Status Resume() = 0;

  // Start recording every user operation (puts, deletes, gets) to a
  // trace file at `path` (see lsm/trace.h for the format and
  // bench_kit/trace_replay.h for the replayer). Returns Busy if a trace
  // is already active.
  virtual Status StartTrace(const std::string& path) = 0;
  // Stop recording and finalize the trace file. Returns InvalidArgument
  // if no trace is active.
  virtual Status EndTrace() = 0;

  // Start recording every file read/write/sync the engine issues to a
  // binary IO trace at `path` (see env/io_trace.h for the record format
  // and bench_kit/io_analyzer.h for the offline analyzer). Returns Busy
  // if an IO trace is already active.
  virtual Status StartIOTrace(const std::string& path) = 0;
  virtual Status EndIOTrace() = 0;

  // Start recording every block-cache lookup (data/index/filter blocks)
  // to a trace at `path` (see table/block_cache_tracer.h for the format
  // and bench_kit/cache_sim.h for the miss-ratio-curve simulator).
  // Returns Busy if a block-cache trace is already active.
  virtual Status StartBlockCacheTrace(const std::string& path) = 0;
  virtual Status EndBlockCacheTrace() = 0;

  // Start the slow-op log: completed operation span trees whose root
  // exceeds options.slow_op_threshold_us — plus every
  // options.sample_every-th op of each kind — are serialized to a
  // CRC-framed span trace at `path` (see lsm/span.h for the format and
  // bench_kit/span_analyzer.h for the latency-attribution analyzer and
  // the Chrome trace-event exporter). Returns Busy if a span trace is
  // already active.
  virtual Status StartSpanTrace(const std::string& path,
                                const SpanTraceOptions& options = {}) = 0;
  // Stop and finalize the span trace. Returns InvalidArgument if no
  // span trace is active.
  virtual Status EndSpanTrace() = 0;

  virtual const DbStats& stats() const = 0;
  virtual const Options& options() const = 0;
};

}  // namespace elmo::lsm
