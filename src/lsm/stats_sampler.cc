#include "lsm/stats_sampler.h"

#include <algorithm>

#include "util/json.h"

namespace elmo::lsm {

namespace {

// Round to one decimal so the JSON stays compact and deterministic
// across libm implementations.
double Round1(double v) {
  const double shifted = v * 10.0 + (v >= 0 ? 0.5 : -0.5);
  return static_cast<double>(static_cast<int64_t>(shifted)) / 10.0;
}

}  // namespace

json::Object SampleToJsonObject(const IntervalSample& s) {
  json::Object o;
  o["ts_us"] = static_cast<int64_t>(s.ts_us);
  o["interval_us"] = static_cast<int64_t>(s.interval_us);
  o["ops"] = static_cast<int64_t>(s.ops);
  o["writes"] = static_cast<int64_t>(s.writes);
  o["gets"] = static_cast<int64_t>(s.gets);
  o["seeks"] = static_cast<int64_t>(s.seeks);
  o["ops_per_sec"] = Round1(s.ops_per_sec);
  o["p50_write_us"] = Round1(s.p50_write_us);
  o["p99_write_us"] = Round1(s.p99_write_us);
  o["p99_get_us"] = Round1(s.p99_get_us);
  o["stall_micros"] = static_cast<int64_t>(s.stall_micros);
  o["stall_fraction"] = Round1(s.stall_fraction * 1000.0) / 1000.0;
  o["flushes"] = static_cast<int64_t>(s.flushes);
  o["compactions"] = static_cast<int64_t>(s.compactions);
  o["compaction_bytes_written"] =
      static_cast<int64_t>(s.compaction_bytes_written);
  o["block_cache_hits"] = static_cast<int64_t>(s.block_cache_hits);
  o["block_cache_misses"] = static_cast<int64_t>(s.block_cache_misses);
  o["block_cache_usage"] = static_cast<int64_t>(s.block_cache_usage);
  o["bg_errors"] = static_cast<int64_t>(s.bg_errors);
  o["auto_resume_successes"] =
      static_cast<int64_t>(s.auto_resume_successes);
  o["auto_resume_failures"] = static_cast<int64_t>(s.auto_resume_failures);
  o["bg_error_severity"] = s.bg_error_severity;
  o["memtable_bytes"] = static_cast<int64_t>(s.memtable_bytes);
  o["imm_count"] = s.imm_count;
  o["pending_compaction_bytes"] =
      static_cast<int64_t>(s.pending_compaction_bytes);
  o["l0_files"] = s.l0_files;
  o["span_stall_us"] = static_cast<int64_t>(s.span_stall_us);
  o["span_wal_sync_us"] = static_cast<int64_t>(s.span_wal_sync_us);
  o["span_sst_probe_us"] = static_cast<int64_t>(s.span_sst_probe_us);
  o["span_memtable_us"] = static_cast<int64_t>(s.span_memtable_us);
  json::Array levels;
  for (int l = 0; l < s.num_levels && l < DbStats::kMaxLevels; l++) {
    levels.emplace_back(s.level_files[l]);
  }
  o["level_files"] = std::move(levels);
  return o;
}

namespace {

uint64_t GetU64(const json::Value& obj, const char* key) {
  const json::Value* v = obj.Find(key);
  return (v != nullptr && v->is_number()) ? static_cast<uint64_t>(v->as_int())
                                          : 0;
}

double GetDouble(const json::Value& obj, const char* key) {
  const json::Value* v = obj.Find(key);
  return (v != nullptr && v->is_number()) ? v->as_double() : 0.0;
}

}  // namespace

IntervalSample SampleFromJsonValue(const json::Value& obj) {
  IntervalSample s;
  s.ts_us = GetU64(obj, "ts_us");
  s.interval_us = GetU64(obj, "interval_us");
  s.ops = GetU64(obj, "ops");
  s.writes = GetU64(obj, "writes");
  s.gets = GetU64(obj, "gets");
  s.seeks = GetU64(obj, "seeks");
  s.ops_per_sec = GetDouble(obj, "ops_per_sec");
  s.p50_write_us = GetDouble(obj, "p50_write_us");
  s.p99_write_us = GetDouble(obj, "p99_write_us");
  s.p99_get_us = GetDouble(obj, "p99_get_us");
  s.stall_micros = GetU64(obj, "stall_micros");
  s.stall_fraction = GetDouble(obj, "stall_fraction");
  s.flushes = GetU64(obj, "flushes");
  s.compactions = GetU64(obj, "compactions");
  s.compaction_bytes_written = GetU64(obj, "compaction_bytes_written");
  s.block_cache_hits = GetU64(obj, "block_cache_hits");
  s.block_cache_misses = GetU64(obj, "block_cache_misses");
  s.block_cache_usage = GetU64(obj, "block_cache_usage");
  s.bg_errors = GetU64(obj, "bg_errors");
  s.auto_resume_successes = GetU64(obj, "auto_resume_successes");
  s.auto_resume_failures = GetU64(obj, "auto_resume_failures");
  s.bg_error_severity = static_cast<int>(GetU64(obj, "bg_error_severity"));
  s.memtable_bytes = GetU64(obj, "memtable_bytes");
  s.imm_count = static_cast<int>(GetU64(obj, "imm_count"));
  s.pending_compaction_bytes = GetU64(obj, "pending_compaction_bytes");
  s.l0_files = static_cast<int>(GetU64(obj, "l0_files"));
  s.span_stall_us = GetU64(obj, "span_stall_us");
  s.span_wal_sync_us = GetU64(obj, "span_wal_sync_us");
  s.span_sst_probe_us = GetU64(obj, "span_sst_probe_us");
  s.span_memtable_us = GetU64(obj, "span_memtable_us");
  const json::Value* levels = obj.Find("level_files");
  if (levels != nullptr && levels->is_array()) {
    const json::Array& a = levels->as_array();
    s.num_levels = static_cast<int>(
        std::min<size_t>(a.size(), DbStats::kMaxLevels));
    for (int l = 0; l < s.num_levels; l++) {
      s.level_files[l] = a[l].is_number() ? static_cast<int>(a[l].as_int()) : 0;
    }
  }
  return s;
}

std::string TimeSeriesToJson(uint64_t interval_us, uint64_t dropped,
                             const std::vector<IntervalSample>& samples) {
  json::Object doc;
  doc["interval_us"] = static_cast<int64_t>(interval_us);
  doc["dropped"] = static_cast<int64_t>(dropped);
  json::Array arr;
  arr.reserve(samples.size());
  for (const IntervalSample& s : samples) {
    arr.emplace_back(SampleToJsonObject(s));
  }
  doc["samples"] = std::move(arr);
  return json::Value(std::move(doc)).Dump();
}

Status TimeSeriesFromJson(const std::string& text,
                          std::vector<IntervalSample>* samples,
                          uint64_t* interval_us, uint64_t* dropped) {
  json::Value doc;
  Status s = json::Parse(text, &doc);
  if (!s.ok()) return s;
  if (!doc.is_object()) {
    return Status::Corruption("timeseries: not a JSON object");
  }
  if (interval_us != nullptr) *interval_us = GetU64(doc, "interval_us");
  if (dropped != nullptr) *dropped = GetU64(doc, "dropped");
  samples->clear();
  const json::Value* arr = doc.Find("samples");
  if (arr == nullptr) return Status::OK();
  if (!arr->is_array()) {
    return Status::Corruption("timeseries: samples is not an array");
  }
  samples->reserve(arr->as_array().size());
  for (const json::Value& v : arr->as_array()) {
    if (!v.is_object()) {
      return Status::Corruption("timeseries: sample is not an object");
    }
    samples->push_back(SampleFromJsonValue(v));
  }
  return Status::OK();
}

StatsSampler::StatsSampler(const DbStats* stats, uint64_t interval_us,
                           size_t capacity, uint64_t start_ts_us)
    : stats_(stats),
      interval_us_(interval_us == 0 ? 1 : interval_us),
      capacity_(capacity == 0 ? 1 : capacity),
      next_due_(start_ts_us + (interval_us == 0 ? 1 : interval_us)),
      prev_(stats->GetSnapshot()),
      prev_ts_us_(start_ts_us) {}

void StatsSampler::SetInterval(uint64_t interval_us, uint64_t now_us) {
  std::lock_guard<std::mutex> l(mu_);
  if (interval_us == 0) interval_us = 1;
  interval_us_.store(interval_us, std::memory_order_relaxed);
  const uint64_t due = prev_ts_us_ + interval_us;
  next_due_.store(due > now_us ? due : now_us,
                  std::memory_order_relaxed);
}

bool StatsSampler::Tick(uint64_t now_us, const EngineGauges& gauges) {
  if (!Due(now_us)) return false;
  std::lock_guard<std::mutex> l(mu_);
  // Re-check under the lock: a racing tick may have consumed this slot,
  // and timestamps must stay strictly monotone.
  if (now_us < next_due_.load(std::memory_order_relaxed) ||
      now_us <= prev_ts_us_) {
    return false;
  }

  StatsSnapshot cur = stats_->GetSnapshot();
  StatsSnapshot delta = cur.Delta(prev_);
  const uint64_t interval = now_us - prev_ts_us_;

  // A tick that lands a whole extra interval after it was due means the
  // sampling cadence slipped (busy sampler thread, or sparse piggyback
  // call sites under SimEnv). Surfaced via LateTicks().
  const uint64_t interval_cfg =
      interval_us_.load(std::memory_order_relaxed);
  if (interval >= 2 * interval_cfg) late_ticks_++;

  IntervalSample s;
  s.ts_us = now_us;
  s.interval_us = interval;
  s.writes = delta.Get(Ticker::kWriteCount) + delta.Get(Ticker::kDeleteCount);
  s.gets = delta.Get(Ticker::kGetHit) + delta.Get(Ticker::kGetMiss);
  s.seeks = delta.Get(Ticker::kSeekCount);
  s.ops = s.writes + s.gets;
  s.ops_per_sec = static_cast<double>(s.ops) * 1e6 / interval;
  const Histogram& wh = delta.GetHistogram(HistogramType::kWriteMicros);
  s.p50_write_us = wh.Median();
  s.p99_write_us = wh.Percentile(99.0);
  s.p99_get_us = delta.GetHistogram(HistogramType::kGetMicros).Percentile(99.0);
  s.stall_micros = delta.Get(Ticker::kWriteStallMicros);
  s.stall_fraction =
      std::min(1.0, static_cast<double>(s.stall_micros) / interval);
  s.flushes = delta.Get(Ticker::kFlushCount);
  s.compactions = delta.Get(Ticker::kCompactionCount);
  s.compaction_bytes_written = delta.Get(Ticker::kCompactionBytesWritten);
  s.block_cache_hits = delta.Get(Ticker::kBlockCacheHit);
  s.block_cache_misses = delta.Get(Ticker::kBlockCacheMiss);
  s.bg_errors = delta.Get(Ticker::kBackgroundErrorsSoft) +
                delta.Get(Ticker::kBackgroundErrorsHard) +
                delta.Get(Ticker::kBackgroundErrorsFatal);
  s.auto_resume_successes = delta.Get(Ticker::kAutoResumeSuccess);
  s.auto_resume_failures = delta.Get(Ticker::kAutoResumeFailure);

  s.memtable_bytes = gauges.memtable_bytes;
  s.block_cache_usage = gauges.block_cache_usage;
  s.imm_count = gauges.imm_count;
  s.pending_compaction_bytes = gauges.pending_compaction_bytes;
  s.num_levels = std::min(gauges.num_levels, DbStats::kMaxLevels);
  for (int l = 0; l < s.num_levels; l++) {
    s.level_files[l] = gauges.level_files[l];
  }
  s.l0_files = s.num_levels > 0 ? s.level_files[0] : 0;
  s.bg_error_severity = gauges.bg_error_severity;

  auto span_delta = [](uint64_t cur_v, uint64_t& prev_v) {
    const uint64_t d = cur_v >= prev_v ? cur_v - prev_v : 0;
    prev_v = cur_v;
    return d;
  };
  s.span_stall_us = span_delta(gauges.span_stall_us, prev_span_stall_us_);
  s.span_wal_sync_us =
      span_delta(gauges.span_wal_sync_us, prev_span_wal_sync_us_);
  s.span_sst_probe_us =
      span_delta(gauges.span_sst_probe_us, prev_span_sst_probe_us_);
  s.span_memtable_us =
      span_delta(gauges.span_memtable_us, prev_span_memtable_us_);

  ring_.push_back(s);
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    dropped_++;
  }
  prev_ = std::move(cur);
  prev_ts_us_ = now_us;
  next_due_.store(now_us + interval_cfg, std::memory_order_relaxed);
  return true;
}

std::vector<IntervalSample> StatsSampler::Samples() const {
  std::lock_guard<std::mutex> l(mu_);
  return std::vector<IntervalSample>(ring_.begin(), ring_.end());
}

IntervalSample StatsSampler::Latest() const {
  std::lock_guard<std::mutex> l(mu_);
  return ring_.empty() ? IntervalSample() : ring_.back();
}

size_t StatsSampler::NumSamples() const {
  std::lock_guard<std::mutex> l(mu_);
  return ring_.size();
}

uint64_t StatsSampler::DroppedSamples() const {
  std::lock_guard<std::mutex> l(mu_);
  return dropped_;
}

uint64_t StatsSampler::LateTicks() const {
  std::lock_guard<std::mutex> l(mu_);
  return late_ticks_;
}

std::string StatsSampler::ToJson() const {
  std::lock_guard<std::mutex> l(mu_);
  return TimeSeriesToJson(
      interval_us_.load(std::memory_order_relaxed), dropped_,
      std::vector<IntervalSample>(ring_.begin(), ring_.end()));
}

}  // namespace elmo::lsm
