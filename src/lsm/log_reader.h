#pragma once

#include <cstdint>
#include <string>

#include "env/env.h"
#include "lsm/log_format.h"
#include "util/slice.h"
#include "util/status.h"

namespace elmo::log {

class Reader {
 public:
  // Interface for reporting corruption during replay.
  class Reporter {
   public:
    virtual ~Reporter() = default;
    virtual void Corruption(size_t bytes, const Status& status) = 0;
  };

  // Reads records from file (not owned). If checksum is true, verifies
  // fragment checksums. With tolerate_torn_tail, a checksum mismatch in
  // the final record of the log — when that record extends exactly to
  // EOF — reads as a clean end-of-log instead of corruption: that shape
  // is what a power cut mid-write leaves behind. Recovery paths (WAL
  // and MANIFEST replay) enable it; offline integrity tools must not.
  Reader(SequentialFile* file, Reporter* reporter, bool checksum,
         bool tolerate_torn_tail = false);

  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  // Reads the next complete record into *record (may point into
  // *scratch). Returns false at EOF.
  bool ReadRecord(Slice* record, std::string* scratch);

 private:
  // Extend record types with internal markers.
  enum { kEof = kMaxRecordType + 1, kBadRecord = kMaxRecordType + 2 };

  unsigned int ReadPhysicalRecord(Slice* result);
  void ReportCorruption(uint64_t bytes, const char* reason);
  void ReportDrop(uint64_t bytes, const Status& reason);

  SequentialFile* const file_;
  Reporter* const reporter_;
  bool const checksum_;
  bool const tolerate_torn_tail_;
  std::string backing_store_;
  Slice buffer_;
  bool eof_ = false;
};

}  // namespace elmo::log
