#pragma once

#include <cstdint>
#include <string>

#include "env/env.h"
#include "lsm/log_format.h"
#include "util/slice.h"
#include "util/status.h"

namespace elmo::log {

class Reader {
 public:
  // Interface for reporting corruption during replay.
  class Reporter {
   public:
    virtual ~Reporter() = default;
    virtual void Corruption(size_t bytes, const Status& status) = 0;
  };

  // Reads records from file (not owned). If checksum is true, verifies
  // fragment checksums.
  Reader(SequentialFile* file, Reporter* reporter, bool checksum);

  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  // Reads the next complete record into *record (may point into
  // *scratch). Returns false at EOF.
  bool ReadRecord(Slice* record, std::string* scratch);

 private:
  // Extend record types with internal markers.
  enum { kEof = kMaxRecordType + 1, kBadRecord = kMaxRecordType + 2 };

  unsigned int ReadPhysicalRecord(Slice* result);
  void ReportCorruption(uint64_t bytes, const char* reason);
  void ReportDrop(uint64_t bytes, const Status& reason);

  SequentialFile* const file_;
  Reporter* const reporter_;
  bool const checksum_;
  std::string backing_store_;
  Slice buffer_;
  bool eof_ = false;
};

}  // namespace elmo::log
