#include "lsm/trace.h"

#include <cstring>

#include "util/coding.h"
#include "util/crc32c.h"

namespace elmo::lsm {

namespace {

constexpr char kTraceMagic[8] = {'E', 'L', 'M', 'O', 'T', 'R', 'C', '1'};
constexpr uint32_t kTraceVersion = 1;
constexpr size_t kHeaderSize = sizeof(kTraceMagic) + 4 + 8;
// fixed64 ts + fixed32 thread + op byte; key/value_size are variable.
constexpr size_t kPayloadFixed = 1 + 8 + 4;

}  // namespace

TraceWriter::TraceWriter(Env* env) : env_(env) {}

TraceWriter::~TraceWriter() { Close(); }

Status TraceWriter::Open(const std::string& path, uint64_t base_ts_us) {
  std::lock_guard<std::mutex> l(mu_);
  Status s = env_->NewWritableFile(path, &file_);
  if (!s.ok()) return s;
  std::string header(kTraceMagic, sizeof(kTraceMagic));
  PutFixed32(&header, kTraceVersion);
  PutFixed64(&header, base_ts_us);
  s = file_->Append(Slice(header));
  if (!s.ok()) file_.reset();
  return s;
}

Status TraceWriter::AddRecord(TraceOp op, uint64_t ts_us, uint32_t thread_id,
                              const Slice& key, uint32_t value_size) {
  std::string payload;
  payload.reserve(kPayloadFixed + 5 + key.size() + 5);
  payload.push_back(static_cast<char>(op));
  PutFixed64(&payload, ts_us);
  PutFixed32(&payload, thread_id);
  PutVarint32(&payload, static_cast<uint32_t>(key.size()));
  payload.append(key.data(), key.size());
  PutVarint32(&payload, value_size);

  std::string frame;
  frame.reserve(8 + payload.size());
  PutFixed32(&frame,
             crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  frame += payload;

  std::lock_guard<std::mutex> l(mu_);
  if (file_ == nullptr) return Status::IOError("trace writer not open");
  Status s = file_->Append(Slice(frame));
  if (s.ok()) records_++;
  return s;
}

Status TraceWriter::Close() {
  std::lock_guard<std::mutex> l(mu_);
  if (file_ == nullptr) return Status::OK();
  Status s = file_->Flush();
  if (s.ok()) s = file_->Sync();
  Status c = file_->Close();
  if (s.ok()) s = c;
  file_.reset();
  return s;
}

uint64_t TraceWriter::records() const {
  std::lock_guard<std::mutex> l(mu_);
  return records_;
}

TraceReader::TraceReader(Env* env) : env_(env) {}

Status TraceReader::Open(const std::string& path) {
  Status s = env_->NewSequentialFile(path, &file_);
  if (!s.ok()) return s;
  std::string header;
  bool eof = false;
  s = ReadFully(kHeaderSize, &header, &eof);
  if (!s.ok()) return s;
  if (eof || memcmp(header.data(), kTraceMagic, sizeof(kTraceMagic)) != 0) {
    return Status::Corruption("not an elmo trace file");
  }
  const uint32_t version = DecodeFixed32(header.data() + sizeof(kTraceMagic));
  if (version != kTraceVersion) {
    return Status::Corruption("unsupported trace version");
  }
  base_ts_us_ = DecodeFixed64(header.data() + sizeof(kTraceMagic) + 4);
  return Status::OK();
}

Status TraceReader::ReadFully(size_t n, std::string* out, bool* clean_eof) {
  out->clear();
  *clean_eof = false;
  std::string scratch(n, '\0');
  size_t got = 0;
  while (got < n) {
    Slice chunk;
    Status s = file_->Read(n - got, &chunk, &scratch[0] + got);
    if (!s.ok()) return s;
    if (chunk.empty()) {
      if (got == 0) {
        *clean_eof = true;
        return Status::OK();
      }
      return Status::Corruption("truncated trace record");
    }
    // The file may return data in its own buffer; normalize into ours.
    if (chunk.data() != scratch.data() + got) {
      memcpy(&scratch[0] + got, chunk.data(), chunk.size());
    }
    got += chunk.size();
  }
  *out = std::move(scratch);
  return Status::OK();
}

Status TraceReader::Next(TraceRecord* rec, bool* eof) {
  *eof = false;
  if (file_ == nullptr) return Status::IOError("trace reader not open");

  std::string frame_header;
  Status s = ReadFully(8, &frame_header, eof);
  if (!s.ok() || *eof) return s;
  const uint32_t expected_crc =
      crc32c::Unmask(DecodeFixed32(frame_header.data()));
  const uint32_t len = DecodeFixed32(frame_header.data() + 4);
  if (len < kPayloadFixed + 2 || len > (1u << 26)) {
    return Status::Corruption("bad trace record length");
  }

  std::string payload;
  bool payload_eof = false;
  s = ReadFully(len, &payload, &payload_eof);
  if (!s.ok()) return s;
  if (payload_eof) return Status::Corruption("truncated trace record");
  if (crc32c::Value(payload.data(), payload.size()) != expected_crc) {
    return Status::Corruption("trace record checksum mismatch");
  }

  const uint8_t op = static_cast<uint8_t>(payload[0]);
  if (op < static_cast<uint8_t>(TraceOp::kPut) ||
      op > static_cast<uint8_t>(TraceOp::kGet)) {
    return Status::Corruption("bad trace op");
  }
  rec->op = static_cast<TraceOp>(op);
  rec->ts_us = DecodeFixed64(payload.data() + 1);
  rec->thread_id = DecodeFixed32(payload.data() + 9);
  Slice rest(payload.data() + kPayloadFixed, payload.size() - kPayloadFixed);
  uint32_t key_len = 0;
  if (!GetVarint32(&rest, &key_len) || rest.size() < key_len) {
    return Status::Corruption("bad trace key length");
  }
  rec->key.assign(rest.data(), key_len);
  rest.remove_prefix(key_len);
  if (!GetVarint32(&rest, &rec->value_size) || !rest.empty()) {
    return Status::Corruption("bad trace value size");
  }
  return Status::OK();
}

}  // namespace elmo::lsm
