#include "lsm/error_handler.h"

#include <algorithm>

namespace elmo::lsm {

const char* BackgroundErrorSourceName(BackgroundErrorSource s) {
  switch (s) {
    case BackgroundErrorSource::kWalAppend:  return "wal_append";
    case BackgroundErrorSource::kWalSync:    return "wal_sync";
    case BackgroundErrorSource::kFlush:      return "flush";
    case BackgroundErrorSource::kCompaction: return "compaction";
    case BackgroundErrorSource::kManifest:   return "manifest";
  }
  return "unknown";
}

const char* BackgroundErrorKindName(BackgroundErrorKind k) {
  switch (k) {
    case BackgroundErrorKind::kRetryableIOError: return "retryable_io_error";
    case BackgroundErrorKind::kNoSpace:          return "no_space";
    case BackgroundErrorKind::kCorruption:       return "corruption";
    case BackgroundErrorKind::kHardFailure:      return "hard_failure";
  }
  return "unknown";
}

const char* ErrorSeverityName(ErrorSeverity s) {
  switch (s) {
    case ErrorSeverity::kNone:  return "none";
    case ErrorSeverity::kSoft:  return "soft";
    case ErrorSeverity::kHard:  return "hard";
    case ErrorSeverity::kFatal: return "fatal";
  }
  return "unknown";
}

BackgroundErrorKind ClassifyBackgroundErrorKind(const Status& s) {
  if (s.IsCorruption()) return BackgroundErrorKind::kCorruption;
  if (s.IsNoSpace()) return BackgroundErrorKind::kNoSpace;
  if (s.IsIOError() && s.IsRetryable()) {
    return BackgroundErrorKind::kRetryableIOError;
  }
  return BackgroundErrorKind::kHardFailure;
}

ErrorSeverity ClassifyBackgroundError(BackgroundErrorSource source,
                                      BackgroundErrorKind kind) {
  const bool journal = source == BackgroundErrorSource::kWalAppend ||
                       source == BackgroundErrorSource::kWalSync ||
                       source == BackgroundErrorSource::kManifest;
  switch (kind) {
    case BackgroundErrorKind::kCorruption:
      return ErrorSeverity::kFatal;
    case BackgroundErrorKind::kNoSpace:
      return ErrorSeverity::kSoft;
    case BackgroundErrorKind::kRetryableIOError:
      // A journal hole is worse than a failed data file: acked writes
      // may not be durable, so stop acking until the WAL/MANIFEST is
      // re-synced. Flush/compaction inputs stay intact — just retry.
      return journal ? ErrorSeverity::kHard : ErrorSeverity::kSoft;
    case BackgroundErrorKind::kHardFailure:
      return journal ? ErrorSeverity::kFatal : ErrorSeverity::kHard;
  }
  return ErrorSeverity::kFatal;
}

bool ErrorHandler::SetBGError(BackgroundErrorSource source, const Status& s,
                              uint64_t now_us) {
  if (s.ok()) return false;
  const BackgroundErrorKind kind = ClassifyBackgroundErrorKind(s);
  ErrorSeverity severity = ClassifyBackgroundError(source, kind);
  const bool recoverable_kind =
      kind == BackgroundErrorKind::kRetryableIOError ||
      kind == BackgroundErrorKind::kNoSpace;
  const bool can_retry = recoverable_kind &&
                         severity != ErrorSeverity::kFatal &&
                         config_.max_auto_resume_retries > 0 &&
                         episode_retries_ < config_.max_auto_resume_retries;
  // A soft error with no retries left must not stall writers with no one
  // scheduled to unstall them: it enters as fail-fast hard instead.
  if (severity == ErrorSeverity::kSoft && !can_retry) {
    severity = ErrorSeverity::kHard;
  }

  // Only a strictly more severe error replaces an active one: the first
  // failure of an episode keeps its identity across retries.
  if (!ok() && severity <= state_.severity) {
    // A repeated same-or-lesser failure still re-arms the next retry if
    // the active error is auto-recoverable (the retried job failed
    // again before OnResumeFailed saw it).
    if (state_.auto_recoverable && state_.next_retry_at_us <= now_us) {
      state_.next_retry_at_us = now_us + BackoffFor(episode_retries_);
    }
    return false;
  }

  const bool recovery_began = state_.recovery_began;
  state_ = State{};
  state_.severity = severity;
  state_.source = source;
  state_.kind = kind;
  state_.cause = s;
  state_.error_ts_us = now_us;
  state_.retry_count = episode_retries_;
  state_.recovery_began = recovery_began;
  errors_seen_[static_cast<int>(severity)]++;

  if (can_retry) {
    state_.auto_recoverable = true;
    state_.next_retry_at_us = now_us + BackoffFor(episode_retries_);
  }
  return true;
}

Status ErrorHandler::WriteStatus() const {
  switch (state_.severity) {
    case ErrorSeverity::kNone:
    case ErrorSeverity::kSoft:
      return Status::OK();
    case ErrorSeverity::kHard:
      return Status::IOError(
          "background error (" +
              std::string(BackgroundErrorSourceName(state_.source)) +
              "): DB is in read-only degraded mode; call Resume()",
          state_.cause.ToString());
    case ErrorSeverity::kFatal:
      return Status::IOError(
          "fatal background error (" +
              std::string(BackgroundErrorSourceName(state_.source)) +
              "): reopen required",
          state_.cause.ToString());
  }
  return Status::OK();
}

int ErrorHandler::OnResumeAttemptStart() {
  episode_retries_++;
  state_.retry_count = episode_retries_;
  state_.recovery_began = true;
  return episode_retries_;
}

void ErrorHandler::OnResumeSucceeded() {
  resume_successes_++;
  state_ = State{};
  // episode_retries_ intentionally survives the clear: for flush and
  // compaction errors, "resume" just reschedules the failed job, and if
  // it fails again it must keep consuming the same bounded budget.
  // NoteBackgroundWorkSuccess forgets the episode once real work
  // actually completes.
}

bool ErrorHandler::OnResumeFailed(const Status& s, uint64_t now_us) {
  (void)s;  // the caller logs the attempt's status
  resume_failures_++;
  state_.retry_count = episode_retries_;
  if (config_.max_auto_resume_retries > 0 &&
      episode_retries_ < config_.max_auto_resume_retries &&
      state_.severity != ErrorSeverity::kFatal) {
    state_.next_retry_at_us = now_us + BackoffFor(episode_retries_);
    state_.auto_recoverable = true;
    return false;
  }
  // Budget exhausted: stop retrying; a stalled soft error must not
  // stall writers forever, so it escalates to fail-fast hard.
  state_.auto_recoverable = false;
  state_.next_retry_at_us = 0;
  if (state_.severity == ErrorSeverity::kSoft) {
    state_.severity = ErrorSeverity::kHard;
    errors_seen_[static_cast<int>(ErrorSeverity::kHard)]++;
    return true;
  }
  return false;
}

uint64_t ErrorHandler::BackoffFor(int retry) const {
  uint64_t backoff = config_.base_backoff_us;
  for (int i = 0; i < retry && backoff < config_.max_backoff_us; i++) {
    backoff *= 2;
  }
  return std::min(backoff, config_.max_backoff_us);
}

}  // namespace elmo::lsm
