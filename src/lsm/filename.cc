#include "lsm/filename.h"

#include <cstdio>
#include <cstring>

#include "env/env.h"
#include "fault/kill_point.h"
#include "util/string_util.h"

namespace elmo {

static std::string MakeFileName(const std::string& dbname, uint64_t number,
                                const char* suffix) {
  char buf[100];
  snprintf(buf, sizeof(buf), "/%06llu.%s",
           static_cast<unsigned long long>(number), suffix);
  return dbname + buf;
}

std::string LogFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "log");
}

std::string TableFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "sst");
}

std::string DescriptorFileName(const std::string& dbname, uint64_t number) {
  char buf[100];
  snprintf(buf, sizeof(buf), "/MANIFEST-%06llu",
           static_cast<unsigned long long>(number));
  return dbname + buf;
}

std::string CurrentFileName(const std::string& dbname) {
  return dbname + "/CURRENT";
}

std::string LockFileName(const std::string& dbname) { return dbname + "/LOCK"; }

std::string InfoLogFileName(const std::string& dbname) {
  return dbname + "/LOG";
}

std::string TempFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "dbtmp");
}

bool ParseFileName(const std::string& filename, uint64_t* number,
                   FileType* type) {
  if (filename == "CURRENT") {
    *number = 0;
    *type = FileType::kCurrentFile;
    return true;
  }
  if (filename == "LOCK") {
    *number = 0;
    *type = FileType::kLockFile;
    return true;
  }
  if (filename == "LOG" || filename == "LOG.old") {
    *number = 0;
    *type = FileType::kInfoLogFile;
    return true;
  }
  if (StartsWith(filename, "MANIFEST-")) {
    auto num = ParseInt64(filename.substr(strlen("MANIFEST-")));
    if (!num.has_value() || *num < 0) return false;
    *number = static_cast<uint64_t>(*num);
    *type = FileType::kDescriptorFile;
    return true;
  }
  // NNNNNN.suffix
  size_t dot = filename.find('.');
  if (dot == std::string::npos) return false;
  auto num = ParseInt64(filename.substr(0, dot));
  if (!num.has_value() || *num < 0) return false;
  std::string suffix = filename.substr(dot + 1);
  if (suffix == "log") {
    *type = FileType::kLogFile;
  } else if (suffix == "sst") {
    *type = FileType::kTableFile;
  } else if (suffix == "dbtmp") {
    *type = FileType::kTempFile;
  } else {
    return false;
  }
  *number = static_cast<uint64_t>(*num);
  return true;
}

Status SetCurrentFile(Env* env, const std::string& dbname,
                      uint64_t descriptor_number) {
  char contents[32];
  snprintf(contents, sizeof(contents), "MANIFEST-%06llu\n",
           static_cast<unsigned long long>(descriptor_number));
  const std::string tmp = TempFileName(dbname, descriptor_number);
  Status s = env->WriteStringToFile(Slice(contents), tmp, /*sync=*/true);
  if (s.ok()) {
    ELMO_KILL_POINT("current:before_rename");
    s = env->RenameFile(tmp, CurrentFileName(dbname));
    ELMO_KILL_POINT("current:after_rename");
  }
  if (!s.ok()) env->RemoveFile(tmp);
  return s;
}

}  // namespace elmo
