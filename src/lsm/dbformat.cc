#include "lsm/dbformat.h"

#include <cassert>
#include <cstring>

namespace elmo {

void AppendInternalKey(std::string* result, const ParsedInternalKey& key) {
  result->append(key.user_key.data(), key.user_key.size());
  PutFixed64(result, PackSequenceAndType(key.sequence, key.type));
}

bool ParseInternalKey(const Slice& internal_key, ParsedInternalKey* result) {
  const size_t n = internal_key.size();
  if (n < 8) return false;
  uint64_t num = DecodeFixed64(internal_key.data() + n - 8);
  uint8_t c = num & 0xff;
  result->sequence = num >> 8;
  result->type = static_cast<ValueType>(c);
  result->user_key = Slice(internal_key.data(), n - 8);
  return c <= static_cast<uint8_t>(kTypeValue);
}

int InternalKeyComparator::Compare(const Slice& akey, const Slice& bkey) const {
  // Order by user key ascending, then sequence descending, then type
  // descending (both packed in the trailer, so a simple reverse compare
  // of the trailer works).
  int r = user_comparator_->Compare(ExtractUserKey(akey),
                                    ExtractUserKey(bkey));
  if (r == 0) {
    const uint64_t anum = DecodeFixed64(akey.data() + akey.size() - 8);
    const uint64_t bnum = DecodeFixed64(bkey.data() + bkey.size() - 8);
    if (anum > bnum) {
      r = -1;
    } else if (anum < bnum) {
      r = +1;
    }
  }
  return r;
}

void InternalKeyComparator::FindShortestSeparator(std::string* start,
                                                  const Slice& limit) const {
  // Attempt to shorten the user portion of the key.
  Slice user_start = ExtractUserKey(Slice(*start));
  Slice user_limit = ExtractUserKey(limit);
  std::string tmp(user_start.data(), user_start.size());
  user_comparator_->FindShortestSeparator(&tmp, user_limit);
  if (tmp.size() < user_start.size() &&
      user_comparator_->Compare(user_start, Slice(tmp)) < 0) {
    // The shortened user key is logically larger, so pair it with the
    // max possible trailer to keep it smaller than all real entries with
    // that user key.
    PutFixed64(&tmp,
               PackSequenceAndType(kMaxSequenceNumber, kValueTypeForSeek));
    assert(Compare(Slice(*start), Slice(tmp)) < 0);
    assert(Compare(Slice(tmp), limit) < 0);
    start->swap(tmp);
  }
}

void InternalKeyComparator::FindShortSuccessor(std::string* key) const {
  Slice user_key = ExtractUserKey(Slice(*key));
  std::string tmp(user_key.data(), user_key.size());
  user_comparator_->FindShortSuccessor(&tmp);
  if (tmp.size() < user_key.size() &&
      user_comparator_->Compare(user_key, Slice(tmp)) < 0) {
    PutFixed64(&tmp,
               PackSequenceAndType(kMaxSequenceNumber, kValueTypeForSeek));
    assert(Compare(Slice(*key), Slice(tmp)) < 0);
    key->swap(tmp);
  }
}

LookupKey::LookupKey(const Slice& user_key, SequenceNumber s) {
  size_t usize = user_key.size();
  size_t needed = usize + 13;  // conservative
  char* dst;
  if (needed <= sizeof(space_)) {
    dst = space_;
  } else {
    dst = new char[needed];
  }
  start_ = dst;
  dst = EncodeVarint32(dst, static_cast<uint32_t>(usize + 8));
  kstart_ = dst;
  memcpy(dst, user_key.data(), usize);
  dst += usize;
  EncodeFixed64(dst, PackSequenceAndType(s, kValueTypeForSeek));
  dst += 8;
  end_ = dst;
}

LookupKey::~LookupKey() {
  if (start_ != space_) delete[] start_;
}

}  // namespace elmo
