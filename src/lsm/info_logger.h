// DbInfoLogger: the DB's structured info LOG. Writes one JSON object
// per line (JSONL) to InfoLogFileName(dbname) through the Env — so under
// SimEnv the LOG lands in the simulated filesystem with virtual-clock
// timestamps, and tests can read it back deterministically.
//
// It doubles as an EventListener: DBImpl appends it to the sanitized
// listener list, so flush/compaction/stall lifecycle events flow into
// the LOG without extra call sites. DBImpl also logs open/options/
// sampler_tick/close events explicitly via LogEvent().
//
// Every line carries "ts_us" (engine clock) and "event"; remaining keys
// are event-specific. Lines are parseable with util/json — nothing in
// the LOG is free-form text.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "env/env.h"
#include "lsm/event_listener.h"
#include "util/json.h"
#include "util/logging.h"

namespace elmo::lsm {

class DbInfoLogger : public EventListener {
 public:
  // `tee` (optional, may be null) additionally receives each event as a
  // one-line debug message — this keeps options.info_log working as the
  // human-readable mirror of the structured LOG.
  DbInfoLogger(Env* env, std::shared_ptr<Logger> tee);
  ~DbInfoLogger() override;

  DbInfoLogger(const DbInfoLogger&) = delete;
  DbInfoLogger& operator=(const DbInfoLogger&) = delete;

  // Create/truncate the LOG file. Until Open succeeds (or after Close),
  // LogEvent is a no-op, so a LOG-less DB still runs.
  Status Open(const std::string& path);

  // Append one event line. `fields` must not contain "ts_us"/"event";
  // both are added here. Thread-safe; callers may hold the DB mutex
  // (this class takes only its own leaf mutex).
  void LogEvent(const std::string& event, json::Object fields);

  // Flush+sync+close the LOG file. Idempotent; called from the DB
  // destructor so no writes can outlive the Env.
  void Close();

  uint64_t lines_written() const;
  // Appends that failed (file error); the line was lost. Folded into
  // Ticker::kInfoLogWriteFailures by the DB.
  uint64_t write_failures() const;

  // EventListener: lifecycle events become LOG lines.
  void OnFlushBegin(const FlushJobInfo& info) override;
  void OnFlushCompleted(const FlushJobInfo& info) override;
  void OnCompactionBegin(const CompactionJobInfo& info) override;
  void OnCompactionCompleted(const CompactionJobInfo& info) override;
  void OnStallConditionChanged(const StallInfo& info) override;
  void OnWriteStop(const StallInfo& info) override;
  // Error-handling lifecycle: "background_error" on entry/escalation,
  // "error_recovery" (phase begin/success/giveup) for resume attempts.
  void OnBackgroundError(const BackgroundErrorInfo& info) override;
  void OnErrorRecoveryBegin(const BackgroundErrorInfo& info) override;
  void OnErrorRecoveryCompleted(const BackgroundErrorInfo& info) override;

 private:
  json::Object FlushFields(const FlushJobInfo& info) const;
  json::Object CompactionFields(const CompactionJobInfo& info) const;
  json::Object StallFields(const StallInfo& info) const;
  json::Object ErrorFields(const BackgroundErrorInfo& info) const;

  Env* const env_;
  const std::shared_ptr<Logger> tee_;

  mutable std::mutex mu_;
  std::unique_ptr<WritableFile> file_;
  uint64_t lines_ = 0;
  uint64_t write_failures_ = 0;
};

}  // namespace elmo::lsm
