// Version / VersionSet: the immutable file topology of the tree and the
// machinery that evolves it (manifest logging, recovery, compaction
// picking for both leveled and universal styles).
#pragma once

#include <cassert>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lsm/dbformat.h"
#include "lsm/options.h"
#include "lsm/table_cache.h"
#include "lsm/version_edit.h"
#include "lsm/log_writer.h"

namespace elmo::lsm {

class Compaction;
class VersionSet;

using FileRef = std::shared_ptr<FileMetaData>;

// Binary search for the earliest file whose largest key >= key.
int FindFile(const InternalKeyComparator& icmp,
             const std::vector<FileRef>& files, const Slice& key);

// True iff some file overlaps [smallest_user_key, largest_user_key].
// Null bounds mean "before all" / "after all" keys.
bool SomeFileOverlapsRange(const InternalKeyComparator& icmp,
                           bool disjoint_sorted_files,
                           const std::vector<FileRef>& files,
                           const Slice* smallest_user_key,
                           const Slice* largest_user_key);

class Version {
 public:
  explicit Version(VersionSet* vset);
  ~Version() = default;

  Version(const Version&) = delete;
  Version& operator=(const Version&) = delete;

  struct GetStats {
    int files_probed = 0;
    int hit_level = -1;  // level that resolved the lookup; -1 = none
  };

  Status Get(const ReadOptions& options, const LookupKey& key,
             std::string* value, GetStats* stats);

  // Append iterators over every file (for the DB-wide merged iterator).
  void AddIterators(const TableIterOptions& iter_opts,
                    std::vector<std::unique_ptr<Iterator>>* iters);

  void GetOverlappingInputs(int level, const InternalKey* begin,
                            const InternalKey* end,
                            std::vector<FileRef>* inputs);

  bool OverlapInLevel(int level, const Slice* smallest_user_key,
                      const Slice* largest_user_key);

  int NumFiles(int level) const {
    return static_cast<int>(files_[level].size());
  }
  uint64_t NumBytes(int level) const;
  int num_levels() const { return static_cast<int>(files_.size()); }

  const std::vector<FileRef>& files(int level) const { return files_[level]; }

  // Compaction pressure score of `level` (>= 1.0 means the level wants
  // compaction), as computed by VersionSet::Finalize. 0 for the last
  // level and before the first Finalize.
  double LevelScore(int level) const {
    return (level >= 0 && level < static_cast<int>(level_scores_.size()))
               ? level_scores_[level]
               : 0.0;
  }

  std::string LevelSummary() const;

 private:
  friend class VersionSet;
  friend class VersionBuilder;
  friend class Compaction;

  VersionSet* vset_;
  std::vector<std::vector<FileRef>> files_;

  // Compaction state computed by VersionSet::Finalize.
  double compaction_score_ = -1;
  int compaction_level_ = -1;
  std::vector<double> level_scores_;
};

class VersionSet {
 public:
  VersionSet(const std::string& dbname, const Options* options,
             TableCache* table_cache, const InternalKeyComparator* cmp);
  ~VersionSet();

  VersionSet(const VersionSet&) = delete;
  VersionSet& operator=(const VersionSet&) = delete;

  // Apply *edit to the current version and persist it to the MANIFEST.
  // External synchronization (the DB mutex) required.
  Status LogAndApply(VersionEdit* edit);

  // Recover the last persisted state from CURRENT/MANIFEST.
  Status Recover();

  // Abandon the open MANIFEST (after a descriptor write/sync failure):
  // the next LogAndApply starts a fresh MANIFEST under a new file
  // number, writes a full snapshot of the current state, and swaps
  // CURRENT to it. Part of background-error recovery (DB::Resume).
  // External synchronization (the DB mutex) required.
  void ForceNewManifest();

  std::shared_ptr<Version> current() const { return current_; }

  uint64_t NewFileNumber() { return next_file_number_++; }
  // Reuse an allocated-but-unused number (crash-safety bookkeeping).
  void ReuseFileNumber(uint64_t file_number) {
    if (next_file_number_ == file_number + 1) next_file_number_ = file_number;
  }

  uint64_t ManifestFileNumber() const { return manifest_file_number_; }
  SequenceNumber LastSequence() const { return last_sequence_; }
  void SetLastSequence(SequenceNumber s) {
    assert(s >= last_sequence_);
    last_sequence_ = s;
  }
  uint64_t LogNumber() const { return log_number_; }

  // True when the current version wants a compaction.
  bool NeedsCompaction() const;

  // Pick the next compaction (level or universal per options); null when
  // nothing to do.
  std::unique_ptr<Compaction> PickCompaction();

  // Compaction covering the given range (manual compaction).
  std::unique_ptr<Compaction> CompactRange(int level, const InternalKey* begin,
                                           const InternalKey* end);

  void AddLiveFiles(std::set<uint64_t>* live) const;

  int NumLevelFiles(int level) const;
  uint64_t NumLevelBytes(int level) const;

  // Estimated bytes of compaction debt (drives the pending-compaction
  // stall triggers).
  uint64_t EstimatePendingCompactionBytes() const;

  const InternalKeyComparator* icmp() const { return icmp_; }
  const Options* options() const { return options_; }
  TableCache* table_cache() { return table_cache_; }

  std::string LevelSummary() const { return current_->LevelSummary(); }

 private:
  friend class Compaction;

  // Compute compaction_score_/level_ for v.
  void Finalize(Version* v);

  Status WriteSnapshot(log::Writer* log);

  std::unique_ptr<Compaction> PickLevelCompaction();
  std::unique_ptr<Compaction> PickUniversalCompaction();

  void SetupOtherInputs(Compaction* c);

  const std::string dbname_;
  const Options* options_;
  TableCache* table_cache_;
  const InternalKeyComparator* icmp_;

  uint64_t next_file_number_ = 2;
  uint64_t manifest_file_number_ = 0;
  uint64_t log_number_ = 0;
  SequenceNumber last_sequence_ = 0;

  std::unique_ptr<WritableFile> descriptor_file_;
  std::unique_ptr<log::Writer> descriptor_log_;

  std::shared_ptr<Version> current_;
  // Every version ever installed that may still be referenced by an
  // in-flight iterator/get (weak: expires when readers drop it). GC
  // must keep the files of ALL of these alive, not just current_.
  mutable std::vector<std::weak_ptr<Version>> live_versions_;

  // Per-level key at which the next round-robin compaction should start.
  std::vector<std::string> compact_pointer_;
};

// A picked compaction: inputs at `level` and `level+1`, the edit under
// construction, and helpers the compaction job consults.
class Compaction {
 public:
  ~Compaction() = default;

  int level() const { return level_; }
  int output_level() const { return output_level_; }
  VersionEdit* edit() { return &edit_; }

  int num_input_files(int which) const {
    return static_cast<int>(inputs_[which].size());
  }
  const FileRef& input(int which, int i) const { return inputs_[which][i]; }
  const std::vector<FileRef>& inputs(int which) const {
    return inputs_[which];
  }

  uint64_t MaxOutputFileSize() const { return max_output_file_size_; }

  // Single-file, no-overlap: the file can be moved down without rewrite.
  bool IsTrivialMove() const;

  // Record the removal of every input file in the edit.
  void AddInputDeletions(VersionEdit* edit);

  // True if the user key is guaranteed absent in levels below
  // output_level (lets the compaction drop deletion markers).
  bool IsBaseLevelForKey(const Slice& user_key);

  uint64_t TotalInputBytes() const;

 private:
  friend class VersionSet;

  Compaction(const Options* options, int level, int output_level);

  int level_;
  int output_level_;
  uint64_t max_output_file_size_;
  std::shared_ptr<Version> input_version_;
  VersionEdit edit_;

  std::vector<FileRef> inputs_[2];

  // State for IsBaseLevelForKey.
  std::vector<size_t> level_ptrs_;
};

}  // namespace elmo::lsm
