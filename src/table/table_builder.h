// TableBuilder: writes a sorted run of key/value pairs into an SST file
// (data blocks + one bloom filter block + index block + footer).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "env/env.h"
#include "table/bloom.h"
#include "table/comparator.h"
#include "table/format.h"
#include "util/slice.h"
#include "util/status.h"

namespace elmo {

struct TableBuildOptions {
  const Comparator* comparator = BytewiseComparator();
  // Null disables the filter block (db_bench's default baseline).
  const FilterPolicy* filter_policy = nullptr;
  // Maps a stored key to the key the filter indexes (the DB passes a
  // transform that strips the internal-key trailer). Identity if unset.
  std::function<Slice(const Slice&)> filter_key_transform;
  size_t block_size = 4096;
  int block_restart_interval = 16;
  CompressionType compression = CompressionType::kNoCompression;
};

class TableBuilder {
 public:
  // Does not take ownership of file; file must outlive the builder.
  TableBuilder(const TableBuildOptions& options, WritableFile* file);
  ~TableBuilder();

  TableBuilder(const TableBuilder&) = delete;
  TableBuilder& operator=(const TableBuilder&) = delete;

  // REQUIRES: key is after any previously added key in comparator order.
  void Add(const Slice& key, const Slice& value);

  // Write the filter/index/footer. No Add after this.
  Status Finish();

  // Abandon the file contents (builder can only be destroyed after).
  void Abandon();

  uint64_t NumEntries() const;
  uint64_t FileSize() const;
  Status status() const;

 private:
  struct Rep;

  void Flush();
  void WriteBlock(class BlockBuilder* block, BlockHandle* handle);
  void WriteRawBlock(const Slice& data, CompressionType type,
                     BlockHandle* handle);

  std::unique_ptr<Rep> rep_;
};

}  // namespace elmo
