#include "table/iterator.h"

#include <cassert>

namespace elmo {

namespace {

class EmptyIterator : public Iterator {
 public:
  explicit EmptyIterator(Status s) : status_(std::move(s)) {}

  bool Valid() const override { return false; }
  void SeekToFirst() override {}
  void SeekToLast() override {}
  void Seek(const Slice&) override {}
  void Next() override { assert(false); }
  void Prev() override { assert(false); }
  Slice key() const override {
    assert(false);
    return Slice();
  }
  Slice value() const override {
    assert(false);
    return Slice();
  }
  Status status() const override { return status_; }

 private:
  Status status_;
};

}  // namespace

std::unique_ptr<Iterator> NewEmptyIterator(Status status) {
  return std::make_unique<EmptyIterator>(std::move(status));
}

}  // namespace elmo
