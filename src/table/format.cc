#include "table/format.h"

#include "util/coding.h"
#include "util/crc32c.h"

namespace elmo {

void BlockHandle::EncodeTo(std::string* dst) const {
  PutVarint64(dst, offset_);
  PutVarint64(dst, size_);
}

Status BlockHandle::DecodeFrom(Slice* input) {
  if (GetVarint64(input, &offset_) && GetVarint64(input, &size_)) {
    return Status::OK();
  }
  return Status::Corruption("bad block handle");
}

void Footer::EncodeTo(std::string* dst) const {
  const size_t original_size = dst->size();
  filter_handle_.EncodeTo(dst);
  index_handle_.EncodeTo(dst);
  dst->resize(original_size + 2 * BlockHandle::kMaxEncodedLength);  // pad
  PutFixed32(dst, static_cast<uint32_t>(kTableMagicNumber & 0xffffffffu));
  PutFixed32(dst, static_cast<uint32_t>(kTableMagicNumber >> 32));
}

Status Footer::DecodeFrom(Slice* input) {
  if (input->size() < kEncodedLength) {
    return Status::Corruption("footer too short");
  }
  const char* magic_ptr = input->data() + kEncodedLength - 8;
  const uint32_t magic_lo = DecodeFixed32(magic_ptr);
  const uint32_t magic_hi = DecodeFixed32(magic_ptr + 4);
  const uint64_t magic =
      (static_cast<uint64_t>(magic_hi) << 32) | magic_lo;
  if (magic != kTableMagicNumber) {
    return Status::Corruption("not an sstable (bad magic number)");
  }
  Status result = filter_handle_.DecodeFrom(input);
  if (result.ok()) {
    result = index_handle_.DecodeFrom(input);
  }
  return result;
}

Status ReadBlock(RandomAccessFile* file, const BlockHandle& handle,
                 BlockContents* result, bool verify_checksums) {
  result->data.clear();
  const size_t n = static_cast<size_t>(handle.size());
  std::string buf(n + kBlockTrailerSize, '\0');
  Slice contents;
  Status s =
      file->Read(handle.offset(), n + kBlockTrailerSize, &contents, buf.data());
  if (!s.ok()) return s;
  if (contents.size() != n + kBlockTrailerSize) {
    return Status::Corruption("truncated block read");
  }

  const char* data = contents.data();
  if (verify_checksums) {
    const uint32_t crc = crc32c::Unmask(DecodeFixed32(data + n + 1));
    const uint32_t actual = crc32c::Value(data, n + 1);
    if (actual != crc) {
      return Status::Corruption("block checksum mismatch");
    }
  }

  switch (static_cast<CompressionType>(data[n])) {
    case CompressionType::kNoCompression:
      result->data.assign(data, n);
      return Status::OK();
    case CompressionType::kRleCompression:
      return RleUncompress(Slice(data, n), &result->data);
  }
  return Status::Corruption("unknown block compression type");
}

void RleCompress(const Slice& input, std::string* output) {
  output->clear();
  const char* p = input.data();
  const char* end = p + input.size();
  while (p < end) {
    char c = *p;
    size_t run = 1;
    while (p + run < end && p[run] == c && run < 255) run++;
    output->push_back(static_cast<char>(run));
    output->push_back(c);
    p += run;
  }
}

Status RleUncompress(const Slice& input, std::string* output) {
  output->clear();
  const char* p = input.data();
  const char* end = p + input.size();
  while (p < end) {
    if (end - p < 2) return Status::Corruption("truncated RLE block");
    size_t run = static_cast<uint8_t>(p[0]);
    if (run == 0) return Status::Corruption("zero-length RLE run");
    output->append(run, p[1]);
    p += 2;
  }
  return Status::OK();
}

}  // namespace elmo
