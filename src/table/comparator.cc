#include "table/comparator.h"

namespace elmo {

namespace {

class BytewiseComparatorImpl : public Comparator {
 public:
  int Compare(const Slice& a, const Slice& b) const override {
    return a.compare(b);
  }

  const char* Name() const override { return "elmo.BytewiseComparator"; }

  void FindShortestSeparator(std::string* start,
                             const Slice& limit) const override {
    size_t min_length = std::min(start->size(), limit.size());
    size_t diff_index = 0;
    while (diff_index < min_length &&
           (*start)[diff_index] == limit[diff_index]) {
      diff_index++;
    }
    if (diff_index >= min_length) {
      // One is a prefix of the other; leave *start unchanged.
      return;
    }
    uint8_t diff_byte = static_cast<uint8_t>((*start)[diff_index]);
    if (diff_byte < 0xff &&
        diff_byte + 1 < static_cast<uint8_t>(limit[diff_index])) {
      (*start)[diff_index]++;
      start->resize(diff_index + 1);
    }
  }

  void FindShortSuccessor(std::string* key) const override {
    for (size_t i = 0; i < key->size(); i++) {
      const uint8_t byte = (*key)[i];
      if (byte != 0xff) {
        (*key)[i] = byte + 1;
        key->resize(i + 1);
        return;
      }
    }
    // All 0xff: leave unchanged.
  }
};

}  // namespace

const Comparator* BytewiseComparator() {
  static BytewiseComparatorImpl singleton;
  return &singleton;
}

}  // namespace elmo
