// On-disk SST format plumbing: block handles, the file footer, block
// trailers (compression type + CRC32C), and checksum-verified block
// reads.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "env/env.h"
#include "util/slice.h"
#include "util/status.h"

namespace elmo {

enum class CompressionType : uint8_t {
  kNoCompression = 0x0,
  kRleCompression = 0x1,  // built-in byte run-length encoding
};

class BlockHandle {
 public:
  BlockHandle() : offset_(~0ull), size_(~0ull) {}

  uint64_t offset() const { return offset_; }
  uint64_t size() const { return size_; }
  void set_offset(uint64_t offset) { offset_ = offset; }
  void set_size(uint64_t size) { size_ = size; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

  // Maximum encoding length of a BlockHandle.
  enum { kMaxEncodedLength = 10 + 10 };

 private:
  uint64_t offset_;
  uint64_t size_;
};

// Footer: filter handle + index handle, padded to fixed length, then an
// 8-byte magic number. Always at the end of every SST file.
class Footer {
 public:
  Footer() = default;

  const BlockHandle& filter_handle() const { return filter_handle_; }
  void set_filter_handle(const BlockHandle& h) { filter_handle_ = h; }
  const BlockHandle& index_handle() const { return index_handle_; }
  void set_index_handle(const BlockHandle& h) { index_handle_ = h; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

  enum { kEncodedLength = 2 * BlockHandle::kMaxEncodedLength + 8 };

 private:
  BlockHandle filter_handle_;
  BlockHandle index_handle_;
};

// "elmoSST1" little-endian.
static const uint64_t kTableMagicNumber = 0x31545353'6f6d6c65ull;

// 1-byte type + 4-byte crc32c after each block.
static const size_t kBlockTrailerSize = 5;

struct BlockContents {
  std::string data;
};

// Read a block, verify its checksum, decompress if needed.
Status ReadBlock(RandomAccessFile* file, const BlockHandle& handle,
                 BlockContents* result, bool verify_checksums = true);

// Built-in RLE codec (kept trivially simple; exists so the
// `compression` option has a real code path and CPU/size trade-off).
void RleCompress(const Slice& input, std::string* output);
Status RleUncompress(const Slice& input, std::string* output);

}  // namespace elmo
