#include "table/table.h"


#include "env/io_trace.h"
#include "table/block.h"
#include "table/format.h"
#include "util/coding.h"

namespace elmo {

namespace {

// The returned iterator keeps the block alive via the shared_ptr.
class OwningIter : public Iterator {
 public:
  OwningIter(std::shared_ptr<const Block> block, const Comparator* cmp)
      : block_(std::move(block)), iter_(block_->NewIterator(cmp)) {}
  bool Valid() const override { return iter_->Valid(); }
  void SeekToFirst() override { iter_->SeekToFirst(); }
  void SeekToLast() override { iter_->SeekToLast(); }
  void Seek(const Slice& t) override { iter_->Seek(t); }
  void Next() override { iter_->Next(); }
  void Prev() override { iter_->Prev(); }
  Slice key() const override { return iter_->key(); }
  Slice value() const override { return iter_->value(); }
  Status status() const override { return iter_->status(); }

 private:
  std::shared_ptr<const Block> block_;
  std::unique_ptr<Iterator> iter_;
};

}  // namespace

struct Table::Rep {
  TableReadOptions options;
  std::unique_ptr<RandomAccessFile> file;
  uint64_t cache_id = 0;
  // Pinned copies, used unless cache_metadata is set.
  std::shared_ptr<const Block> index_block;
  std::shared_ptr<const std::string> filter_data;
  // Handles for reload-on-miss when index/filter live in the block cache.
  BlockHandle index_handle;
  BlockHandle filter_handle;  // size()==0 when the table has no filter
  bool cache_metadata = false;

  Slice CacheKey(char* buf, uint64_t offset) const {
    EncodeFixed64(buf, cache_id);
    EncodeFixed64(buf + 8, offset);
    return Slice(buf, 16);
  }

  void Trace(TraceBlockType type, bool hit, bool fill, int level,
             uint64_t offset, uint64_t charge) const {
    if (options.cache_tracer != nullptr) {
      options.cache_tracer->Record(type, hit, fill, level,
                                   options.file_number, offset, charge);
    }
  }
};

Table::Table(std::unique_ptr<Rep> rep) : rep_(std::move(rep)) {}
Table::~Table() = default;

Status Table::Open(const TableReadOptions& options,
                   std::unique_ptr<RandomAccessFile> file, uint64_t file_size,
                   std::unique_ptr<Table>* table) {
  table->reset();
  if (file_size < Footer::kEncodedLength) {
    return Status::Corruption("file is too short to be an sstable");
  }

  // Footer/index/filter reads are SST metadata in the IO trace.
  IOMetadataHintScope metadata_scope;

  char footer_space[Footer::kEncodedLength];
  Slice footer_input;
  Status s = file->Read(file_size - Footer::kEncodedLength,
                        Footer::kEncodedLength, &footer_input, footer_space);
  if (!s.ok()) return s;

  Footer footer;
  s = footer.DecodeFrom(&footer_input);
  if (!s.ok()) return s;

  BlockContents index_contents;
  s = ReadBlock(file.get(), footer.index_handle(), &index_contents,
                options.verify_checksums);
  if (!s.ok()) return s;

  auto rep = std::make_unique<Rep>();
  rep->options = options;
  rep->file = std::move(file);
  rep->cache_id = options.block_cache ? options.block_cache->NewId() : 0;
  rep->index_handle = footer.index_handle();
  rep->cache_metadata =
      options.cache_index_and_filter_blocks && options.block_cache != nullptr;

  auto index = std::make_shared<Block>(std::move(index_contents.data));
  std::shared_ptr<std::string> filter;
  if (options.filter_policy != nullptr && footer.filter_handle().size() > 0) {
    rep->filter_handle = footer.filter_handle();
    BlockContents filter_contents;
    s = ReadBlock(rep->file.get(), footer.filter_handle(), &filter_contents,
                  options.verify_checksums);
    if (!s.ok()) return s;
    filter = std::make_shared<std::string>(std::move(filter_contents.data));
  }

  if (rep->cache_metadata) {
    // Charge the metadata to the block cache instead of pinning; the
    // initial loads count as (filling) misses in the access trace.
    char key_buf[16];
    rep->options.block_cache->Insert(
        rep->CacheKey(key_buf, rep->index_handle.offset()), index,
        index->size());
    rep->Trace(TraceBlockType::kIndex, /*hit=*/false, /*fill=*/true,
               /*level=*/-1, rep->index_handle.offset(), index->size());
    if (filter != nullptr) {
      rep->options.block_cache->Insert(
          rep->CacheKey(key_buf, rep->filter_handle.offset()), filter,
          filter->size());
      rep->Trace(TraceBlockType::kFilter, false, true, -1,
                 rep->filter_handle.offset(), filter->size());
    }
  } else {
    rep->index_block = std::move(index);
    rep->filter_data = std::move(filter);
  }

  *table = std::unique_ptr<Table>(new Table(std::move(rep)));
  return Status::OK();
}

std::shared_ptr<const Block> Table::GetIndexBlock(Status* status) const {
  const Rep* r = rep_.get();
  *status = Status::OK();
  if (!r->cache_metadata) return r->index_block;

  char key_buf[16];
  Slice key = r->CacheKey(key_buf, r->index_handle.offset());
  auto cached = r->options.block_cache->LookupAs<const Block>(key);
  if (cached != nullptr) {
    r->Trace(TraceBlockType::kIndex, true, true, -1, r->index_handle.offset(),
             cached->size());
    return cached;
  }
  IOMetadataHintScope metadata_scope;
  BlockContents contents;
  *status = ReadBlock(r->file.get(), r->index_handle, &contents,
                      r->options.verify_checksums);
  if (!status->ok()) return nullptr;
  auto fresh = std::make_shared<Block>(std::move(contents.data));
  r->options.block_cache->Insert(key, fresh, fresh->size());
  r->Trace(TraceBlockType::kIndex, false, true, -1, r->index_handle.offset(),
           fresh->size());
  return fresh;
}

std::shared_ptr<const std::string> Table::GetFilter(Status* status) const {
  const Rep* r = rep_.get();
  *status = Status::OK();
  if (!r->cache_metadata) return r->filter_data;
  if (r->filter_handle.size() == 0) return nullptr;  // table has no filter

  char key_buf[16];
  Slice key = r->CacheKey(key_buf, r->filter_handle.offset());
  auto cached = r->options.block_cache->LookupAs<const std::string>(key);
  if (cached != nullptr) {
    r->Trace(TraceBlockType::kFilter, true, true, -1,
             r->filter_handle.offset(), cached->size());
    return cached;
  }
  IOMetadataHintScope metadata_scope;
  BlockContents contents;
  *status = ReadBlock(r->file.get(), r->filter_handle, &contents,
                      r->options.verify_checksums);
  if (!status->ok()) return nullptr;
  auto fresh = std::make_shared<std::string>(std::move(contents.data));
  r->options.block_cache->Insert(key, fresh, fresh->size());
  r->Trace(TraceBlockType::kFilter, false, true, -1,
           r->filter_handle.offset(), fresh->size());
  return fresh;
}

std::unique_ptr<Iterator> Table::BlockReader(const Slice& index_value,
                                             bool fill_cache,
                                             int level) const {
  const Rep* r = rep_.get();
  Slice input = index_value;
  BlockHandle handle;
  Status s = handle.DecodeFrom(&input);
  if (!s.ok()) return NewEmptyIterator(s);

  std::shared_ptr<const Block> block;
  if (r->options.block_cache != nullptr) {
    char cache_key_buf[16];
    Slice cache_key = r->CacheKey(cache_key_buf, handle.offset());
    auto cached =
        r->options.block_cache->LookupAs<const Block>(cache_key);
    if (cached != nullptr) {
      r->Trace(TraceBlockType::kData, true, fill_cache, level,
               handle.offset(), cached->size());
      block = cached;
    } else {
      BlockContents contents;
      s = ReadBlock(r->file.get(), handle, &contents,
                    r->options.verify_checksums);
      if (!s.ok()) return NewEmptyIterator(s);
      auto fresh = std::make_shared<Block>(std::move(contents.data));
      if (fill_cache) {
        r->options.block_cache->Insert(cache_key, fresh, fresh->size());
      }
      r->Trace(TraceBlockType::kData, false, fill_cache, level,
               handle.offset(), fresh->size());
      block = fresh;
    }
  } else {
    BlockContents contents;
    s = ReadBlock(r->file.get(), handle, &contents,
                  r->options.verify_checksums);
    if (!s.ok()) return NewEmptyIterator(s);
    block = std::make_shared<Block>(std::move(contents.data));
  }

  return std::make_unique<OwningIter>(std::move(block),
                                      r->options.comparator);
}

namespace {

// Iterates over the data blocks named by an index iterator.
class TwoLevelIterator : public Iterator {
 public:
  TwoLevelIterator(
      std::unique_ptr<Iterator> index_iter,
      std::function<std::unique_ptr<Iterator>(const Slice&)> block_function)
      : index_iter_(std::move(index_iter)),
        block_function_(std::move(block_function)) {}

  bool Valid() const override {
    return data_iter_ != nullptr && data_iter_->Valid();
  }

  void Seek(const Slice& target) override {
    index_iter_->Seek(target);
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->Seek(target);
    SkipEmptyDataBlocksForward();
  }

  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    SkipEmptyDataBlocksForward();
  }

  void SeekToLast() override {
    index_iter_->SeekToLast();
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->SeekToLast();
    SkipEmptyDataBlocksBackward();
  }

  void Next() override {
    data_iter_->Next();
    SkipEmptyDataBlocksForward();
  }

  void Prev() override {
    data_iter_->Prev();
    SkipEmptyDataBlocksBackward();
  }

  Slice key() const override { return data_iter_->key(); }
  Slice value() const override { return data_iter_->value(); }

  Status status() const override {
    if (!index_iter_->status().ok()) return index_iter_->status();
    if (data_iter_ != nullptr && !data_iter_->status().ok()) {
      return data_iter_->status();
    }
    return status_;
  }

 private:
  // A data-block error must survive even though the erroring iterator
  // is replaced while skipping.
  void SaveChildError() {
    if (data_iter_ != nullptr && status_.ok() &&
        !data_iter_->status().ok()) {
      status_ = data_iter_->status();
    }
  }

  void SkipEmptyDataBlocksForward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      SaveChildError();
      if (!index_iter_->Valid()) {
        data_iter_.reset();
        return;
      }
      index_iter_->Next();
      InitDataBlock();
      if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    }
  }

  void SkipEmptyDataBlocksBackward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      SaveChildError();
      if (!index_iter_->Valid()) {
        data_iter_.reset();
        return;
      }
      index_iter_->Prev();
      InitDataBlock();
      if (data_iter_ != nullptr) data_iter_->SeekToLast();
    }
  }

  void InitDataBlock() {
    if (!index_iter_->Valid()) {
      SaveChildError();
      data_iter_.reset();
      return;
    }
    Slice handle = index_iter_->value();
    if (data_iter_ != nullptr && handle == current_handle_) return;
    SaveChildError();
    current_handle_.assign(handle.data(), handle.size());
    data_iter_ = block_function_(handle);
  }

  std::unique_ptr<Iterator> index_iter_;
  std::function<std::unique_ptr<Iterator>(const Slice&)> block_function_;
  std::unique_ptr<Iterator> data_iter_;
  std::string current_handle_;
  Status status_;
};

}  // namespace

std::unique_ptr<Iterator> Table::NewIterator(
    const TableIterOptions& iter_options) const {
  Status s;
  std::shared_ptr<const Block> index = GetIndexBlock(&s);
  if (index == nullptr) return NewEmptyIterator(s);
  // Cursor tracking how far readahead has been issued.
  auto readahead_pos = std::make_shared<uint64_t>(0);
  auto block_fn = [this, iter_options,
                   readahead_pos](const Slice& handle) {
    if (iter_options.readahead_bytes > 0) {
      Slice input = handle;
      BlockHandle bh;
      if (bh.DecodeFrom(&input).ok() && bh.offset() >= *readahead_pos) {
        rep_->file->Readahead(bh.offset(), iter_options.readahead_bytes);
        *readahead_pos = bh.offset() + iter_options.readahead_bytes;
      }
    }
    return BlockReader(handle, iter_options.fill_cache, iter_options.level);
  };
  // The index iterator keeps the (possibly cache-resident) block alive.
  return std::make_unique<TwoLevelIterator>(
      std::make_unique<OwningIter>(std::move(index), rep_->options.comparator),
      block_fn);
}

Status Table::InternalGet(
    const Slice& key,
    const std::function<void(const Slice&, const Slice&)>& handler,
    int level) const {
  const Rep* r = rep_.get();

  // Filter check first: a negative verdict saves the block read.
  Status s;
  std::shared_ptr<const std::string> filter = GetFilter(&s);
  if (!s.ok()) return s;
  if (r->options.filter_policy != nullptr && filter != nullptr &&
      !filter->empty()) {
    Slice filter_key = r->options.filter_key_transform
                           ? r->options.filter_key_transform(key)
                           : key;
    if (!r->options.filter_policy->KeyMayMatch(filter_key, Slice(*filter))) {
      return Status::OK();  // definitely absent from this table
    }
  }

  std::shared_ptr<const Block> index = GetIndexBlock(&s);
  if (index == nullptr) return s;
  auto index_iter = index->NewIterator(r->options.comparator);
  index_iter->Seek(key);
  if (index_iter->Valid()) {
    auto block_iter =
        BlockReader(index_iter->value(), /*fill_cache=*/true, level);
    block_iter->Seek(key);
    if (block_iter->Valid()) {
      handler(block_iter->key(), block_iter->value());
    }
    if (!block_iter->status().ok()) return block_iter->status();
  }
  return index_iter->status();
}

uint64_t Table::ApproximateOffsetOf(const Slice& key) const {
  Status s;
  std::shared_ptr<const Block> index = GetIndexBlock(&s);
  if (index == nullptr) return 0;
  auto index_iter = index->NewIterator(rep_->options.comparator);
  index_iter->Seek(key);
  if (index_iter->Valid()) {
    Slice input = index_iter->value();
    BlockHandle handle;
    if (handle.DecodeFrom(&input).ok()) {
      return handle.offset();
    }
  }
  return 0;
}

}  // namespace elmo
