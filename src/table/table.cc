#include "table/table.h"

#include <atomic>

#include "table/block.h"
#include "table/format.h"
#include "util/coding.h"

namespace elmo {

namespace {

// Unique id per open table, prefixing block-cache keys.
uint64_t NextCacheId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1);
}

}  // namespace

struct Table::Rep {
  TableReadOptions options;
  std::unique_ptr<RandomAccessFile> file;
  uint64_t cache_id = 0;
  std::unique_ptr<Block> index_block;
  std::string filter_data;  // raw bloom filter block (may be empty)
};

Table::Table(std::unique_ptr<Rep> rep) : rep_(std::move(rep)) {}
Table::~Table() = default;

Status Table::Open(const TableReadOptions& options,
                   std::unique_ptr<RandomAccessFile> file, uint64_t file_size,
                   std::unique_ptr<Table>* table) {
  table->reset();
  if (file_size < Footer::kEncodedLength) {
    return Status::Corruption("file is too short to be an sstable");
  }

  char footer_space[Footer::kEncodedLength];
  Slice footer_input;
  Status s = file->Read(file_size - Footer::kEncodedLength,
                        Footer::kEncodedLength, &footer_input, footer_space);
  if (!s.ok()) return s;

  Footer footer;
  s = footer.DecodeFrom(&footer_input);
  if (!s.ok()) return s;

  BlockContents index_contents;
  s = ReadBlock(file.get(), footer.index_handle(), &index_contents,
                options.verify_checksums);
  if (!s.ok()) return s;

  auto rep = std::make_unique<Rep>();
  rep->options = options;
  rep->file = std::move(file);
  rep->cache_id = options.block_cache ? NextCacheId() : 0;
  rep->index_block = std::make_unique<Block>(std::move(index_contents.data));

  if (options.filter_policy != nullptr &&
      footer.filter_handle().size() > 0) {
    BlockContents filter_contents;
    s = ReadBlock(rep->file.get(), footer.filter_handle(), &filter_contents,
                  options.verify_checksums);
    if (!s.ok()) return s;
    rep->filter_data = std::move(filter_contents.data);
  }

  *table = std::unique_ptr<Table>(new Table(std::move(rep)));
  return Status::OK();
}

std::unique_ptr<Iterator> Table::BlockReader(const Slice& index_value,
                                             bool fill_cache) const {
  const Rep* r = rep_.get();
  Slice input = index_value;
  BlockHandle handle;
  Status s = handle.DecodeFrom(&input);
  if (!s.ok()) return NewEmptyIterator(s);

  std::shared_ptr<const Block> block;
  if (r->options.block_cache != nullptr) {
    char cache_key_buf[16];
    EncodeFixed64(cache_key_buf, r->cache_id);
    EncodeFixed64(cache_key_buf + 8, handle.offset());
    Slice cache_key(cache_key_buf, sizeof(cache_key_buf));
    auto cached =
        r->options.block_cache->LookupAs<const Block>(cache_key);
    if (cached != nullptr) {
      block = cached;
    } else {
      BlockContents contents;
      s = ReadBlock(r->file.get(), handle, &contents,
                    r->options.verify_checksums);
      if (!s.ok()) return NewEmptyIterator(s);
      auto fresh = std::make_shared<Block>(std::move(contents.data));
      if (fill_cache) {
        r->options.block_cache->Insert(cache_key, fresh, fresh->size());
      }
      block = fresh;
    }
  } else {
    BlockContents contents;
    s = ReadBlock(r->file.get(), handle, &contents,
                  r->options.verify_checksums);
    if (!s.ok()) return NewEmptyIterator(s);
    block = std::make_shared<Block>(std::move(contents.data));
  }

  // The returned iterator keeps the block alive via the capture below.
  class OwningIter : public Iterator {
   public:
    OwningIter(std::shared_ptr<const Block> block, const Comparator* cmp)
        : block_(std::move(block)), iter_(block_->NewIterator(cmp)) {}
    bool Valid() const override { return iter_->Valid(); }
    void SeekToFirst() override { iter_->SeekToFirst(); }
    void SeekToLast() override { iter_->SeekToLast(); }
    void Seek(const Slice& t) override { iter_->Seek(t); }
    void Next() override { iter_->Next(); }
    void Prev() override { iter_->Prev(); }
    Slice key() const override { return iter_->key(); }
    Slice value() const override { return iter_->value(); }
    Status status() const override { return iter_->status(); }

   private:
    std::shared_ptr<const Block> block_;
    std::unique_ptr<Iterator> iter_;
  };
  return std::make_unique<OwningIter>(std::move(block),
                                      r->options.comparator);
}

namespace {

// Iterates over the data blocks named by an index iterator.
class TwoLevelIterator : public Iterator {
 public:
  TwoLevelIterator(
      std::unique_ptr<Iterator> index_iter,
      std::function<std::unique_ptr<Iterator>(const Slice&)> block_function)
      : index_iter_(std::move(index_iter)),
        block_function_(std::move(block_function)) {}

  bool Valid() const override {
    return data_iter_ != nullptr && data_iter_->Valid();
  }

  void Seek(const Slice& target) override {
    index_iter_->Seek(target);
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->Seek(target);
    SkipEmptyDataBlocksForward();
  }

  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    SkipEmptyDataBlocksForward();
  }

  void SeekToLast() override {
    index_iter_->SeekToLast();
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->SeekToLast();
    SkipEmptyDataBlocksBackward();
  }

  void Next() override {
    data_iter_->Next();
    SkipEmptyDataBlocksForward();
  }

  void Prev() override {
    data_iter_->Prev();
    SkipEmptyDataBlocksBackward();
  }

  Slice key() const override { return data_iter_->key(); }
  Slice value() const override { return data_iter_->value(); }

  Status status() const override {
    if (!index_iter_->status().ok()) return index_iter_->status();
    if (data_iter_ != nullptr && !data_iter_->status().ok()) {
      return data_iter_->status();
    }
    return status_;
  }

 private:
  // A data-block error must survive even though the erroring iterator
  // is replaced while skipping.
  void SaveChildError() {
    if (data_iter_ != nullptr && status_.ok() &&
        !data_iter_->status().ok()) {
      status_ = data_iter_->status();
    }
  }

  void SkipEmptyDataBlocksForward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      SaveChildError();
      if (!index_iter_->Valid()) {
        data_iter_.reset();
        return;
      }
      index_iter_->Next();
      InitDataBlock();
      if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    }
  }

  void SkipEmptyDataBlocksBackward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      SaveChildError();
      if (!index_iter_->Valid()) {
        data_iter_.reset();
        return;
      }
      index_iter_->Prev();
      InitDataBlock();
      if (data_iter_ != nullptr) data_iter_->SeekToLast();
    }
  }

  void InitDataBlock() {
    if (!index_iter_->Valid()) {
      SaveChildError();
      data_iter_.reset();
      return;
    }
    Slice handle = index_iter_->value();
    if (data_iter_ != nullptr && handle == current_handle_) return;
    SaveChildError();
    current_handle_.assign(handle.data(), handle.size());
    data_iter_ = block_function_(handle);
  }

  std::unique_ptr<Iterator> index_iter_;
  std::function<std::unique_ptr<Iterator>(const Slice&)> block_function_;
  std::unique_ptr<Iterator> data_iter_;
  std::string current_handle_;
  Status status_;
};

}  // namespace

std::unique_ptr<Iterator> Table::NewIterator(
    const TableIterOptions& iter_options) const {
  // Cursor tracking how far readahead has been issued.
  auto readahead_pos = std::make_shared<uint64_t>(0);
  auto block_fn = [this, iter_options,
                   readahead_pos](const Slice& handle) {
    if (iter_options.readahead_bytes > 0) {
      Slice input = handle;
      BlockHandle bh;
      if (bh.DecodeFrom(&input).ok() && bh.offset() >= *readahead_pos) {
        rep_->file->Readahead(bh.offset(), iter_options.readahead_bytes);
        *readahead_pos = bh.offset() + iter_options.readahead_bytes;
      }
    }
    return BlockReader(handle, iter_options.fill_cache);
  };
  return std::make_unique<TwoLevelIterator>(
      rep_->index_block->NewIterator(rep_->options.comparator), block_fn);
}

Status Table::InternalGet(
    const Slice& key,
    const std::function<void(const Slice&, const Slice&)>& handler) const {
  const Rep* r = rep_.get();

  // Filter check first: a negative verdict saves the block read.
  if (r->options.filter_policy != nullptr && !r->filter_data.empty()) {
    Slice filter_key = r->options.filter_key_transform
                           ? r->options.filter_key_transform(key)
                           : key;
    if (!r->options.filter_policy->KeyMayMatch(filter_key,
                                               Slice(r->filter_data))) {
      return Status::OK();  // definitely absent from this table
    }
  }

  auto index_iter = r->index_block->NewIterator(r->options.comparator);
  index_iter->Seek(key);
  if (index_iter->Valid()) {
    auto block_iter = BlockReader(index_iter->value(), /*fill_cache=*/true);
    block_iter->Seek(key);
    if (block_iter->Valid()) {
      handler(block_iter->key(), block_iter->value());
    }
    if (!block_iter->status().ok()) return block_iter->status();
  }
  return index_iter->status();
}

uint64_t Table::ApproximateOffsetOf(const Slice& key) const {
  auto index_iter =
      rep_->index_block->NewIterator(rep_->options.comparator);
  index_iter->Seek(key);
  if (index_iter->Valid()) {
    Slice input = index_iter->value();
    BlockHandle handle;
    if (handle.DecodeFrom(&input).ok()) {
      return handle.offset();
    }
  }
  return 0;
}

}  // namespace elmo
