// Comparator: total order over keys, plus the key-shortening hooks the
// SST index uses to keep separator keys small.
#pragma once

#include <string>

#include "util/slice.h"

namespace elmo {

class Comparator {
 public:
  virtual ~Comparator() = default;

  virtual int Compare(const Slice& a, const Slice& b) const = 0;
  virtual const char* Name() const = 0;

  // If *start < limit, change *start to a short key in [start, limit).
  virtual void FindShortestSeparator(std::string* start,
                                     const Slice& limit) const = 0;
  // Change *key to a short key >= *key.
  virtual void FindShortSuccessor(std::string* key) const = 0;
};

// Singleton lexicographic bytewise comparator.
const Comparator* BytewiseComparator();

}  // namespace elmo
