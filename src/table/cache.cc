#include "table/cache.h"

#include <algorithm>
#include <cassert>

namespace elmo {

namespace {

// FNV-1a; good enough to spread block cache keys across shards.
uint32_t HashSlice(const Slice& s) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < s.size(); i++) {
    h ^= static_cast<uint8_t>(s[i]);
    h *= 16777619u;
  }
  return h;
}

class LruShard {
 public:
  void SetCapacity(size_t capacity) {
    std::lock_guard<std::mutex> l(mu_);
    capacity_ = capacity;
    EvictIfNeeded();
  }

  void Insert(const Slice& key, std::shared_ptr<void> value, size_t charge) {
    std::lock_guard<std::mutex> l(mu_);
    std::string k = key.ToString();
    auto it = map_.find(k);
    if (it != map_.end()) {
      usage_ -= it->second->charge;
      lru_.erase(it->second);
      map_.erase(it);
    }
    lru_.push_front(Entry{k, std::move(value), charge});
    map_[k] = lru_.begin();
    usage_ += charge;
    stats_.inserts++;
    stats_.evictions += EvictIfNeeded();
  }

  std::shared_ptr<void> Lookup(const Slice& key) {
    std::lock_guard<std::mutex> l(mu_);
    auto it = map_.find(key.ToString());
    if (it == map_.end()) {
      stats_.misses++;
      return nullptr;
    }
    stats_.hits++;
    // Move to front (most recently used).
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->value;
  }

  Cache::Stats GetStats() const {
    std::lock_guard<std::mutex> l(mu_);
    return stats_;
  }

  void Erase(const Slice& key) {
    std::lock_guard<std::mutex> l(mu_);
    auto it = map_.find(key.ToString());
    if (it == map_.end()) return;
    usage_ -= it->second->charge;
    lru_.erase(it->second);
    map_.erase(it);
  }

  size_t Usage() const {
    std::lock_guard<std::mutex> l(mu_);
    return usage_;
  }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<void> value;
    size_t charge;
  };

  // Callers hold mu_. Returns evicted count.
  uint64_t EvictIfNeeded() {
    uint64_t evicted = 0;
    while (usage_ > capacity_ && !lru_.empty()) {
      Entry& victim = lru_.back();
      usage_ -= victim.charge;
      map_.erase(victim.key);
      lru_.pop_back();
      evicted++;
    }
    return evicted;
  }

  mutable std::mutex mu_;
  size_t capacity_ = 0;
  size_t usage_ = 0;
  Cache::Stats stats_;  // per-shard, so lookups never cross-serialize
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> map_;
};

class ShardedLruCache : public Cache {
 public:
  ShardedLruCache(size_t capacity, int num_shard_bits)
      : shards_(1u << num_shard_bits), shard_mask_((1u << num_shard_bits) - 1) {
    capacity_ = capacity;
    const size_t per_shard =
        (capacity + shards_.size() - 1) / shards_.size();
    for (auto& s : shards_) s.SetCapacity(per_shard);
  }

  void Insert(const Slice& key, std::shared_ptr<void> value,
              size_t charge) override {
    Shard(key).Insert(key, std::move(value), charge);
  }

  std::shared_ptr<void> Lookup(const Slice& key) override {
    return Shard(key).Lookup(key);
  }

  void Erase(const Slice& key) override { Shard(key).Erase(key); }

  size_t TotalCharge() const override {
    size_t total = 0;
    for (const auto& s : shards_) total += s.Usage();
    return total;
  }

  size_t Capacity() const override { return capacity_; }

  void SetCapacity(size_t capacity) override {
    capacity_ = capacity;
    const size_t per_shard =
        (capacity + shards_.size() - 1) / shards_.size();
    for (auto& s : shards_) s.SetCapacity(per_shard);
  }

  Stats GetStats() const override {
    Stats total;
    for (const auto& s : shards_) {
      Stats shard = s.GetStats();
      total.hits += shard.hits;
      total.misses += shard.misses;
      total.inserts += shard.inserts;
      total.evictions += shard.evictions;
    }
    return total;
  }

 private:
  LruShard& Shard(const Slice& key) {
    return shards_[HashSlice(key) & shard_mask_];
  }

  std::vector<LruShard> shards_;
  const uint32_t shard_mask_;
  size_t capacity_;
};

}  // namespace

std::shared_ptr<Cache> NewLruCache(size_t capacity, int num_shard_bits) {
  assert(num_shard_bits >= 0 && num_shard_bits <= 10);
  return std::make_shared<ShardedLruCache>(capacity, num_shard_bits);
}

}  // namespace elmo
