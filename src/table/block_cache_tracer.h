// Block-cache access tracing. Every block-cache lookup issued by Table
// readers (data blocks, and index/filter blocks when
// cache_index_and_filter_blocks is on) is recorded with the block type,
// owning SST file number + LSM level, hit/miss, whether a miss would
// fill the cache, and the block's charge. The trace is the input to the
// offline cache simulator (bench_kit/cache_sim.h), which replays it
// against ghost LRUs at other capacities to produce a miss-ratio curve.
//
// File layout (CRC framing identical to env/io_trace.h):
//   header:  "ELMOBCT1" | fixed32 version (=1) | fixed64 base_ts_us
//   record:  fixed32 masked_crc(payload) | fixed32 payload_len | payload
//   payload: fixed64 ts_us | type (1) | hit (1) | fill (1) | level (1,
//            int8, -1 = unknown) | fixed64 file_number | fixed64 offset
//            | fixed64 charge
//
// One BlockCacheTracer lives for the DB's lifetime (created by DBImpl,
// handed to every Table via TableReadOptions); Record() is a no-op
// unless a trace was activated with Start(). The trace file is written
// through the raw Env so trace output never shows up in the IO trace.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "env/env.h"
#include "util/status.h"

namespace elmo {

enum class TraceBlockType : uint8_t {
  kData = 1,
  kIndex = 2,
  kFilter = 3,
};

const char* TraceBlockTypeName(TraceBlockType type);

struct BlockCacheAccessRecord {
  uint64_t ts_us = 0;
  TraceBlockType type = TraceBlockType::kData;
  bool hit = false;
  bool fill = true;  // false for fill_cache=false lookups (compaction)
  int level = -1;    // LSM level of the owning SST; -1 if unknown
  uint64_t file_number = 0;
  uint64_t offset = 0;  // block offset within the SST
  uint64_t charge = 0;  // bytes the block occupies (or would occupy)
};

class BlockCacheTracer {
 public:
  explicit BlockCacheTracer(Env* env);
  ~BlockCacheTracer();

  BlockCacheTracer(const BlockCacheTracer&) = delete;
  BlockCacheTracer& operator=(const BlockCacheTracer&) = delete;

  // Begin recording into `path`. Busy if a trace is already active.
  Status Start(const std::string& path);
  // Stop and close; *records (optional) receives the record count.
  // InvalidArgument if no trace is active.
  Status Stop(uint64_t* records);
  bool active() const { return enabled_.load(std::memory_order_acquire); }

  // Record one lookup (timestamped on the env clock). No-op when no
  // trace is active; append failures drop the record, not the lookup.
  void Record(TraceBlockType type, bool hit, bool fill, int level,
              uint64_t file_number, uint64_t offset, uint64_t charge);

 private:
  Env* const env_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::unique_ptr<WritableFile> file_;
  uint64_t records_ = 0;
};

class BlockCacheTraceReader {
 public:
  explicit BlockCacheTraceReader(Env* env);

  BlockCacheTraceReader(const BlockCacheTraceReader&) = delete;
  BlockCacheTraceReader& operator=(const BlockCacheTraceReader&) = delete;

  Status Open(const std::string& path);
  // *eof=true with OK status at a clean end of file; Corruption on a bad
  // CRC or truncated record.
  Status Next(BlockCacheAccessRecord* rec, bool* eof);

  uint64_t base_ts_us() const { return base_ts_us_; }

 private:
  Status ReadFully(size_t n, std::string* out, bool* clean_eof);

  Env* const env_;
  std::unique_ptr<SequentialFile> file_;
  uint64_t base_ts_us_ = 0;
};

}  // namespace elmo
