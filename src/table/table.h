// Table: immutable SST reader. Data blocks go through the (optional)
// shared block cache. Index and filter blocks are pinned in memory by
// default, or charged to the block cache (and reloaded on demand) when
// cache_index_and_filter_blocks is set.
#pragma once

#include <cstdint>
#include <memory>

#include "env/env.h"
#include "table/block_cache_tracer.h"
#include "table/bloom.h"
#include "table/cache.h"
#include "table/comparator.h"
#include "table/iterator.h"
#include "util/slice.h"
#include "util/status.h"

namespace elmo {

class Block;

struct TableReadOptions {
  const Comparator* comparator = BytewiseComparator();
  const FilterPolicy* filter_policy = nullptr;
  std::function<Slice(const Slice&)> filter_key_transform;
  // Shared block cache; null reads every block from the file.
  std::shared_ptr<Cache> block_cache;
  bool verify_checksums = true;
  // Charge index/filter blocks to the block cache (reloading on miss)
  // instead of pinning them for the table's lifetime. Ignored (with a
  // pinned fallback) when block_cache is null.
  bool cache_index_and_filter_blocks = false;
  // Identity + tracing for block-cache observability. file_number names
  // the SST in trace records; cache_tracer (if set) records every
  // block-cache lookup this table issues.
  uint64_t file_number = 0;
  std::shared_ptr<BlockCacheTracer> cache_tracer;
};

struct TableIterOptions {
  bool fill_cache = true;
  // Compaction readahead window in bytes (0 = none); issued via
  // RandomAccessFile::Readahead as the iterator crosses block
  // boundaries.
  uint64_t readahead_bytes = 0;
  // LSM level of the file being read (-1 = unknown); only used to label
  // block-cache trace records.
  int level = -1;
};

class Table {
 public:
  // Opens a table; keeps ownership of `file`.
  static Status Open(const TableReadOptions& options,
                     std::unique_ptr<RandomAccessFile> file,
                     uint64_t file_size, std::unique_ptr<Table>* table);

  ~Table();

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  std::unique_ptr<Iterator> NewIterator(
      const TableIterOptions& iter_options = {}) const;

  // Point lookup: calls handler(key, value) on the first entry at or
  // after `key` in this table, if any. The bloom filter is consulted
  // with the transform-applied key first. `level` only labels trace
  // records (-1 = unknown).
  Status InternalGet(const Slice& key,
                     const std::function<void(const Slice&, const Slice&)>&
                         handler,
                     int level = -1) const;

  uint64_t ApproximateOffsetOf(const Slice& key) const;

 private:
  struct Rep;
  explicit Table(std::unique_ptr<Rep> rep);

  std::unique_ptr<Iterator> BlockReader(const Slice& index_value,
                                        bool fill_cache, int level) const;
  std::shared_ptr<const Block> GetIndexBlock(Status* status) const;
  std::shared_ptr<const std::string> GetFilter(Status* status) const;

  std::unique_ptr<Rep> rep_;
};

}  // namespace elmo
