// Table: immutable SST reader. Index and filter blocks are pinned in
// memory; data blocks go through the (optional) shared block cache.
#pragma once

#include <cstdint>
#include <memory>

#include "env/env.h"
#include "table/bloom.h"
#include "table/cache.h"
#include "table/comparator.h"
#include "table/iterator.h"
#include "util/slice.h"
#include "util/status.h"

namespace elmo {

struct TableReadOptions {
  const Comparator* comparator = BytewiseComparator();
  const FilterPolicy* filter_policy = nullptr;
  std::function<Slice(const Slice&)> filter_key_transform;
  // Shared block cache; null reads every block from the file.
  std::shared_ptr<Cache> block_cache;
  bool verify_checksums = true;
};

struct TableIterOptions {
  bool fill_cache = true;
  // Compaction readahead window in bytes (0 = none); issued via
  // RandomAccessFile::Readahead as the iterator crosses block
  // boundaries.
  uint64_t readahead_bytes = 0;
};

class Table {
 public:
  // Opens a table; keeps ownership of `file`.
  static Status Open(const TableReadOptions& options,
                     std::unique_ptr<RandomAccessFile> file,
                     uint64_t file_size, std::unique_ptr<Table>* table);

  ~Table();

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  std::unique_ptr<Iterator> NewIterator(
      const TableIterOptions& iter_options = {}) const;

  // Point lookup: calls handler(key, value) on the first entry at or
  // after `key` in this table, if any. The bloom filter is consulted
  // with the transform-applied key first.
  Status InternalGet(const Slice& key,
                     const std::function<void(const Slice&, const Slice&)>&
                         handler) const;

  uint64_t ApproximateOffsetOf(const Slice& key) const;

 private:
  struct Rep;
  explicit Table(std::unique_ptr<Rep> rep);

  std::unique_ptr<Iterator> BlockReader(const Slice& index_value,
                                        bool fill_cache) const;

  std::unique_ptr<Rep> rep_;
};

}  // namespace elmo
