#include "table/bloom.h"

#include "util/coding.h"

namespace elmo {

// Murmur-inspired hash from leveldb.
static uint32_t Hash(const char* data, size_t n, uint32_t seed) {
  const uint32_t m = 0xc6a4a793;
  const uint32_t r = 24;
  const char* limit = data + n;
  uint32_t h = seed ^ (n * m);

  while (data + 4 <= limit) {
    uint32_t w = DecodeFixed32(data);
    data += 4;
    h += w;
    h *= m;
    h ^= (h >> 16);
  }

  switch (limit - data) {
    case 3:
      h += static_cast<uint8_t>(data[2]) << 16;
      [[fallthrough]];
    case 2:
      h += static_cast<uint8_t>(data[1]) << 8;
      [[fallthrough]];
    case 1:
      h += static_cast<uint8_t>(data[0]);
      h *= m;
      h ^= (h >> r);
      break;
  }
  return h;
}

uint32_t BloomHash(const Slice& key) {
  return Hash(key.data(), key.size(), 0xbc9f1d34);
}

BloomFilterPolicy::BloomFilterPolicy(int bits_per_key)
    : bits_per_key_(bits_per_key) {
  // k = bits_per_key * ln(2), clamped.
  k_ = static_cast<int>(bits_per_key * 0.69);
  if (k_ < 1) k_ = 1;
  if (k_ > 30) k_ = 30;
}

void BloomFilterPolicy::CreateFilter(const Slice* keys, int n,
                                     std::string* dst) const {
  size_t bits = n * static_cast<size_t>(bits_per_key_);
  if (bits < 64) bits = 64;
  size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  const size_t init_size = dst->size();
  dst->resize(init_size + bytes, 0);
  dst->push_back(static_cast<char>(k_));  // remember probe count
  char* array = dst->data() + init_size;
  for (int i = 0; i < n; i++) {
    // Double hashing: h, h+delta, h+2*delta, ...
    uint32_t h = BloomHash(keys[i]);
    const uint32_t delta = (h >> 17) | (h << 15);
    for (int j = 0; j < k_; j++) {
      const uint32_t bitpos = h % bits;
      array[bitpos / 8] |= (1 << (bitpos % 8));
      h += delta;
    }
  }
}

bool BloomFilterPolicy::KeyMayMatch(const Slice& key,
                                    const Slice& bloom_filter) const {
  const size_t len = bloom_filter.size();
  if (len < 2) return false;

  const char* array = bloom_filter.data();
  const size_t bits = (len - 1) * 8;

  const int k = array[len - 1];
  if (k > 30) {
    // Reserved for future encodings; treat as "may match".
    return true;
  }

  uint32_t h = BloomHash(key);
  const uint32_t delta = (h >> 17) | (h << 15);
  for (int j = 0; j < k; j++) {
    const uint32_t bitpos = h % bits;
    if ((array[bitpos / 8] & (1 << (bitpos % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

}  // namespace elmo
