// Bloom filter policy (double hashing, leveldb-compatible scheme).
// `bloom_filter_bits_per_key <= 0` in the options disables filters —
// the db_bench default the paper's baseline runs with.
#pragma once

#include <string>
#include <vector>

#include "util/slice.h"

namespace elmo {

class FilterPolicy {
 public:
  virtual ~FilterPolicy() = default;
  virtual const char* Name() const = 0;
  // Append a filter summarizing keys[0..n-1] to *dst.
  virtual void CreateFilter(const Slice* keys, int n,
                            std::string* dst) const = 0;
  virtual bool KeyMayMatch(const Slice& key, const Slice& filter) const = 0;
};

class BloomFilterPolicy : public FilterPolicy {
 public:
  explicit BloomFilterPolicy(int bits_per_key);

  const char* Name() const override { return "elmo.BuiltinBloomFilter"; }
  void CreateFilter(const Slice* keys, int n, std::string* dst) const override;
  bool KeyMayMatch(const Slice& key, const Slice& filter) const override;

  int bits_per_key() const { return bits_per_key_; }

 private:
  int bits_per_key_;
  int k_;  // number of probes
};

uint32_t BloomHash(const Slice& key);

}  // namespace elmo
