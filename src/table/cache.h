// Sharded LRU cache with strict charge accounting — the engine's block
// cache (`block_cache_size` option) and table cache live on this.
// Values are type-erased shared_ptrs: a cached block stays alive while a
// reader holds it even if it is evicted concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/slice.h"

namespace elmo {

class Cache {
 public:
  virtual ~Cache() = default;

  virtual void Insert(const Slice& key, std::shared_ptr<void> value,
                      size_t charge) = 0;
  virtual std::shared_ptr<void> Lookup(const Slice& key) = 0;
  virtual void Erase(const Slice& key) = 0;
  virtual size_t TotalCharge() const = 0;
  virtual size_t Capacity() const = 0;
  virtual void SetCapacity(size_t capacity) = 0;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
  };
  virtual Stats GetStats() const = 0;

  template <typename T>
  std::shared_ptr<T> LookupAs(const Slice& key) {
    return std::static_pointer_cast<T>(Lookup(key));
  }

  // Unique id for cache-key prefixes (one per open table). Per-cache,
  // not process-global: keys only need to be unique within this cache,
  // and a fresh cache must reproduce the same key stream regardless of
  // what ran earlier in the process — otherwise same-seed benchmark
  // runs diverge through shard/eviction placement.
  uint64_t NewId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> next_id_{1};
};

// num_shard_bits = 4 gives 16 shards, the RocksDB default.
std::shared_ptr<Cache> NewLruCache(size_t capacity, int num_shard_bits = 4);

}  // namespace elmo
