#include "table/table_builder.h"

#include <cassert>
#include <vector>

#include "table/block_builder.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace elmo {

struct TableBuilder::Rep {
  Rep(const TableBuildOptions& opt, WritableFile* f)
      : options(opt),
        file(f),
        data_block(opt.block_restart_interval),
        index_block(1) {}

  TableBuildOptions options;
  WritableFile* file;
  uint64_t offset = 0;
  Status status;
  BlockBuilder data_block;
  BlockBuilder index_block;
  std::string last_key;
  uint64_t num_entries = 0;
  bool closed = false;

  // Filter state: keys (post-transform) for the whole file.
  std::string filter_keys_flat;
  std::vector<size_t> filter_key_offsets;

  // Invariant: pending_index_entry only true after a block is flushed.
  bool pending_index_entry = false;
  BlockHandle pending_handle;

  std::string compressed_output;
};

TableBuilder::TableBuilder(const TableBuildOptions& options,
                           WritableFile* file)
    : rep_(std::make_unique<Rep>(options, file)) {}

TableBuilder::~TableBuilder() { assert(rep_->closed); }

void TableBuilder::Add(const Slice& key, const Slice& value) {
  Rep* r = rep_.get();
  assert(!r->closed);
  if (!r->status.ok()) return;
  if (r->num_entries > 0) {
    assert(r->options.comparator->Compare(key, Slice(r->last_key)) > 0);
  }

  if (r->pending_index_entry) {
    assert(r->data_block.empty());
    r->options.comparator->FindShortestSeparator(&r->last_key, key);
    std::string handle_encoding;
    r->pending_handle.EncodeTo(&handle_encoding);
    r->index_block.Add(Slice(r->last_key), Slice(handle_encoding));
    r->pending_index_entry = false;
  }

  if (r->options.filter_policy != nullptr) {
    Slice filter_key = r->options.filter_key_transform
                           ? r->options.filter_key_transform(key)
                           : key;
    r->filter_key_offsets.push_back(r->filter_keys_flat.size());
    r->filter_keys_flat.append(filter_key.data(), filter_key.size());
  }

  r->last_key.assign(key.data(), key.size());
  r->num_entries++;
  r->data_block.Add(key, value);

  if (r->data_block.CurrentSizeEstimate() >= r->options.block_size) {
    Flush();
  }
}

void TableBuilder::Flush() {
  Rep* r = rep_.get();
  assert(!r->closed);
  if (!r->status.ok()) return;
  if (r->data_block.empty()) return;
  assert(!r->pending_index_entry);
  WriteBlock(&r->data_block, &r->pending_handle);
  if (r->status.ok()) {
    r->pending_index_entry = true;
    r->status = r->file->Flush();
  }
}

void TableBuilder::WriteBlock(BlockBuilder* block, BlockHandle* handle) {
  Rep* r = rep_.get();
  Slice raw = block->Finish();

  Slice block_contents;
  CompressionType type = r->options.compression;
  switch (type) {
    case CompressionType::kNoCompression:
      block_contents = raw;
      break;
    case CompressionType::kRleCompression: {
      RleCompress(raw, &r->compressed_output);
      if (r->compressed_output.size() < raw.size()) {
        block_contents = Slice(r->compressed_output);
      } else {
        // Not compressible; store raw.
        block_contents = raw;
        type = CompressionType::kNoCompression;
      }
      break;
    }
  }
  WriteRawBlock(block_contents, type, handle);
  r->compressed_output.clear();
  block->Reset();
}

void TableBuilder::WriteRawBlock(const Slice& block_contents,
                                 CompressionType type, BlockHandle* handle) {
  Rep* r = rep_.get();
  handle->set_offset(r->offset);
  handle->set_size(block_contents.size());
  r->status = r->file->Append(block_contents);
  if (r->status.ok()) {
    char trailer[kBlockTrailerSize];
    trailer[0] = static_cast<char>(type);
    uint32_t crc = crc32c::Value(block_contents.data(), block_contents.size());
    crc = crc32c::Extend(crc, trailer, 1);  // extend over the type byte
    EncodeFixed32(trailer + 1, crc32c::Mask(crc));
    r->status = r->file->Append(Slice(trailer, kBlockTrailerSize));
    if (r->status.ok()) {
      r->offset += block_contents.size() + kBlockTrailerSize;
    }
  }
}

Status TableBuilder::Finish() {
  Rep* r = rep_.get();
  Flush();
  assert(!r->closed);
  r->closed = true;

  BlockHandle filter_block_handle, index_block_handle;
  // A zero-sized handle marks "no filter block".
  filter_block_handle.set_offset(0);
  filter_block_handle.set_size(0);

  // Filter block: one bloom filter over every key in the file.
  if (r->status.ok() && r->options.filter_policy != nullptr) {
    std::vector<Slice> keys;
    keys.reserve(r->filter_key_offsets.size());
    for (size_t i = 0; i < r->filter_key_offsets.size(); i++) {
      size_t begin = r->filter_key_offsets[i];
      size_t end = (i + 1 < r->filter_key_offsets.size())
                       ? r->filter_key_offsets[i + 1]
                       : r->filter_keys_flat.size();
      keys.emplace_back(r->filter_keys_flat.data() + begin, end - begin);
    }
    std::string filter_data;
    r->options.filter_policy->CreateFilter(
        keys.data(), static_cast<int>(keys.size()), &filter_data);
    WriteRawBlock(Slice(filter_data), CompressionType::kNoCompression,
                  &filter_block_handle);
  }

  // Index block.
  if (r->status.ok()) {
    if (r->pending_index_entry) {
      r->options.comparator->FindShortSuccessor(&r->last_key);
      std::string handle_encoding;
      r->pending_handle.EncodeTo(&handle_encoding);
      r->index_block.Add(Slice(r->last_key), Slice(handle_encoding));
      r->pending_index_entry = false;
    }
    WriteBlock(&r->index_block, &index_block_handle);
  }

  // Footer.
  if (r->status.ok()) {
    Footer footer;
    footer.set_filter_handle(filter_block_handle);
    footer.set_index_handle(index_block_handle);
    std::string footer_encoding;
    footer.EncodeTo(&footer_encoding);
    r->status = r->file->Append(Slice(footer_encoding));
    if (r->status.ok()) {
      r->offset += footer_encoding.size();
    }
  }
  return r->status;
}

void TableBuilder::Abandon() {
  rep_->closed = true;
}

uint64_t TableBuilder::NumEntries() const { return rep_->num_entries; }

uint64_t TableBuilder::FileSize() const { return rep_->offset; }

Status TableBuilder::status() const { return rep_->status; }

}  // namespace elmo
