// Block: immutable, checksum-verified block contents with a restart-
// aware binary-search iterator.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "table/iterator.h"
#include "util/slice.h"

namespace elmo {

class Comparator;

class Block {
 public:
  explicit Block(std::string contents);
  ~Block() = default;

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  size_t size() const { return data_.size(); }
  std::unique_ptr<Iterator> NewIterator(const Comparator* comparator) const;

 private:
  class Iter;

  uint32_t NumRestarts() const;

  std::string data_;
  uint32_t restart_offset_ = 0;  // offset of restart array
  bool malformed_ = false;
};

}  // namespace elmo
