// Iterator: the cursor abstraction shared by memtables, SST blocks,
// tables and the merged DB view.
#pragma once

#include <functional>
#include <memory>

#include "util/slice.h"
#include "util/status.h"

namespace elmo {

class Iterator {
 public:
  Iterator() = default;
  virtual ~Iterator() = default;

  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  virtual void SeekToLast() = 0;
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;
  virtual void Prev() = 0;

  // Valid only when Valid(). Slices remain live until the next move.
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;

  virtual Status status() const = 0;
};

// Empty iterator carrying an optional error status.
std::unique_ptr<Iterator> NewEmptyIterator(Status status = Status::OK());

}  // namespace elmo
