// BlockBuilder: prefix-compressed key/value block with restart points,
// the leveldb block format. `block_restart_interval` is one of the
// engine's tunable options.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"

namespace elmo {

class Comparator;

class BlockBuilder {
 public:
  explicit BlockBuilder(int block_restart_interval);

  BlockBuilder(const BlockBuilder&) = delete;
  BlockBuilder& operator=(const BlockBuilder&) = delete;

  void Reset();

  // REQUIRES: key is larger than any previously added key.
  void Add(const Slice& key, const Slice& value);

  // Finish building; returns a slice valid until Reset().
  Slice Finish();

  // Estimate of the (uncompressed) size of the block we are building.
  size_t CurrentSizeEstimate() const;

  bool empty() const { return buffer_.empty(); }

 private:
  const int block_restart_interval_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_ = 0;
  bool finished_ = false;
  std::string last_key_;
};

}  // namespace elmo
