#include "table/block_cache_tracer.h"

#include <cstring>

#include "util/coding.h"
#include "util/crc32c.h"

namespace elmo {

namespace {

constexpr char kBctMagic[8] = {'E', 'L', 'M', 'O', 'B', 'C', 'T', '1'};
constexpr uint32_t kBctVersion = 1;
constexpr size_t kHeaderSize = sizeof(kBctMagic) + 4 + 8;
// ts + type + hit + fill + level + file_number + offset + charge.
constexpr size_t kPayloadSize = 8 + 1 + 1 + 1 + 1 + 8 + 8 + 8;

}  // namespace

const char* TraceBlockTypeName(TraceBlockType type) {
  switch (type) {
    case TraceBlockType::kData:
      return "data";
    case TraceBlockType::kIndex:
      return "index";
    case TraceBlockType::kFilter:
      return "filter";
  }
  return "unknown";
}

BlockCacheTracer::BlockCacheTracer(Env* env) : env_(env) {}

BlockCacheTracer::~BlockCacheTracer() { Stop(nullptr); }

Status BlockCacheTracer::Start(const std::string& path) {
  std::lock_guard<std::mutex> l(mu_);
  if (file_ != nullptr) return Status::Busy("block cache trace already active");
  std::unique_ptr<WritableFile> file;
  Status s = env_->NewWritableFile(path, &file);
  if (!s.ok()) return s;
  std::string header(kBctMagic, sizeof(kBctMagic));
  PutFixed32(&header, kBctVersion);
  PutFixed64(&header, env_->NowMicros());
  s = file->Append(Slice(header));
  if (!s.ok()) return s;
  file_ = std::move(file);
  records_ = 0;
  enabled_.store(true, std::memory_order_release);
  return Status::OK();
}

Status BlockCacheTracer::Stop(uint64_t* records) {
  std::lock_guard<std::mutex> l(mu_);
  if (file_ == nullptr) return Status::InvalidArgument("no block cache trace");
  enabled_.store(false, std::memory_order_release);
  if (records != nullptr) *records = records_;
  Status s = file_->Flush();
  if (s.ok()) s = file_->Sync();
  Status c = file_->Close();
  if (s.ok()) s = c;
  file_.reset();
  return s;
}

void BlockCacheTracer::Record(TraceBlockType type, bool hit, bool fill,
                              int level, uint64_t file_number, uint64_t offset,
                              uint64_t charge) {
  if (!active()) return;
  if (level < -1 || level > 127) level = -1;

  std::string payload;
  payload.reserve(kPayloadSize);
  PutFixed64(&payload, env_->NowMicros());
  payload.push_back(static_cast<char>(type));
  payload.push_back(hit ? 1 : 0);
  payload.push_back(fill ? 1 : 0);
  payload.push_back(static_cast<char>(static_cast<int8_t>(level)));
  PutFixed64(&payload, file_number);
  PutFixed64(&payload, offset);
  PutFixed64(&payload, charge);

  std::string frame;
  frame.reserve(8 + payload.size());
  PutFixed32(&frame,
             crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  frame += payload;

  std::lock_guard<std::mutex> l(mu_);
  if (file_ == nullptr) return;  // raced with Stop(); drop the record
  if (file_->Append(Slice(frame)).ok()) records_++;
}

BlockCacheTraceReader::BlockCacheTraceReader(Env* env) : env_(env) {}

Status BlockCacheTraceReader::Open(const std::string& path) {
  Status s = env_->NewSequentialFile(path, &file_);
  if (!s.ok()) return s;
  std::string header;
  bool eof = false;
  s = ReadFully(kHeaderSize, &header, &eof);
  if (!s.ok()) return s;
  if (eof || memcmp(header.data(), kBctMagic, sizeof(kBctMagic)) != 0) {
    return Status::Corruption("not an elmo block cache trace file");
  }
  const uint32_t version = DecodeFixed32(header.data() + sizeof(kBctMagic));
  if (version != kBctVersion) {
    return Status::Corruption("unsupported block cache trace version");
  }
  base_ts_us_ = DecodeFixed64(header.data() + sizeof(kBctMagic) + 4);
  return Status::OK();
}

Status BlockCacheTraceReader::ReadFully(size_t n, std::string* out,
                                        bool* clean_eof) {
  out->clear();
  *clean_eof = false;
  std::string scratch(n, '\0');
  size_t got = 0;
  while (got < n) {
    Slice chunk;
    Status s = file_->Read(n - got, &chunk, &scratch[0] + got);
    if (!s.ok()) return s;
    if (chunk.empty()) {
      if (got == 0) {
        *clean_eof = true;
        return Status::OK();
      }
      return Status::Corruption("truncated block cache trace record");
    }
    if (chunk.data() != scratch.data() + got) {
      memcpy(&scratch[0] + got, chunk.data(), chunk.size());
    }
    got += chunk.size();
  }
  *out = std::move(scratch);
  return Status::OK();
}

Status BlockCacheTraceReader::Next(BlockCacheAccessRecord* rec, bool* eof) {
  *eof = false;
  if (file_ == nullptr) {
    return Status::IOError("block cache trace reader not open");
  }

  std::string frame_header;
  Status s = ReadFully(8, &frame_header, eof);
  if (!s.ok() || *eof) return s;
  const uint32_t expected_crc =
      crc32c::Unmask(DecodeFixed32(frame_header.data()));
  const uint32_t len = DecodeFixed32(frame_header.data() + 4);
  if (len != kPayloadSize) {
    return Status::Corruption("bad block cache trace record length");
  }

  std::string payload;
  bool payload_eof = false;
  s = ReadFully(len, &payload, &payload_eof);
  if (!s.ok()) return s;
  if (payload_eof) {
    return Status::Corruption("truncated block cache trace record");
  }
  if (crc32c::Value(payload.data(), payload.size()) != expected_crc) {
    return Status::Corruption("block cache trace record checksum mismatch");
  }

  rec->ts_us = DecodeFixed64(payload.data());
  const uint8_t type = static_cast<uint8_t>(payload[8]);
  if (type < static_cast<uint8_t>(TraceBlockType::kData) ||
      type > static_cast<uint8_t>(TraceBlockType::kFilter)) {
    return Status::Corruption("bad block cache trace block type");
  }
  rec->type = static_cast<TraceBlockType>(type);
  rec->hit = payload[9] != 0;
  rec->fill = payload[10] != 0;
  rec->level = static_cast<int8_t>(payload[11]);
  rec->file_number = DecodeFixed64(payload.data() + 12);
  rec->offset = DecodeFixed64(payload.data() + 20);
  rec->charge = DecodeFixed64(payload.data() + 28);
  return Status::OK();
}

}  // namespace elmo
