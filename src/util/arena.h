// Arena: bump allocator backing the memtable skip list. Allocations are
// freed wholesale when the arena is destroyed; MemoryUsage() feeds the
// write_buffer_size accounting.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace elmo {

class Arena {
 public:
  Arena();
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  char* Allocate(size_t bytes);
  char* AllocateAligned(size_t bytes);

  // Total memory footprint of the arena (blocks + bookkeeping), usable as
  // an approximation of memtable size.
  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  char* alloc_ptr_ = nullptr;
  size_t alloc_bytes_remaining_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::atomic<size_t> memory_usage_{0};
};

inline char* Arena::Allocate(size_t bytes) {
  assert(bytes > 0);
  if (bytes <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

}  // namespace elmo
