// Leveled logger with printf-style formatting. The DB writes its LOG
// through this (background job activity, stalls, option dumps) and the
// tuning loop scrapes some of it into prompts.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace elmo {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

class Logger {
 public:
  virtual ~Logger() = default;
  virtual void Logv(LogLevel level, const char* format, va_list ap) = 0;

  void Log(LogLevel level, const char* format, ...)
      __attribute__((format(printf, 3, 4)));
};

// Discards everything.
class NullLogger : public Logger {
 public:
  void Logv(LogLevel, const char*, va_list) override {}
};

// Appends formatted lines to an in-memory buffer (used by SimEnv and by
// tests that assert on log contents). Bounded: at most `max_lines` are
// retained; beyond that the oldest line is dropped and counted, so a
// chatty multi-hour simulated run cannot grow memory without bound.
class BufferLogger : public Logger {
 public:
  explicit BufferLogger(LogLevel min_level = LogLevel::kInfo,
                        size_t max_lines = 4096)
      : min_level_(min_level), max_lines_(max_lines == 0 ? 1 : max_lines) {}

  void Logv(LogLevel level, const char* format, va_list ap) override;

  std::vector<std::string> TakeLines();
  std::string Contents() const;
  // Lines evicted to honor the cap (cumulative; not reset by TakeLines).
  uint64_t dropped_lines() const;

 private:
  const LogLevel min_level_;
  const size_t max_lines_;
  mutable std::mutex mu_;
  std::deque<std::string> lines_;
  uint64_t dropped_ = 0;
};

// Writes to stderr; used by examples.
class StderrLogger : public Logger {
 public:
  explicit StderrLogger(LogLevel min_level = LogLevel::kInfo)
      : min_level_(min_level) {}

  void Logv(LogLevel level, const char* format, va_list ap) override;

 private:
  const LogLevel min_level_;
};

std::string FormatLogLine(LogLevel level, const char* format, va_list ap);

// Convenience macros used throughout the engine. `logger` may be null.
#define ELMO_LOG_AT(logger, lvl, ...)                   \
  do {                                                  \
    if ((logger) != nullptr) {                          \
      (logger)->Log((lvl), __VA_ARGS__);                \
    }                                                   \
  } while (0)

#define ELMO_LOG(logger, ...) \
  ELMO_LOG_AT(logger, ::elmo::LogLevel::kInfo, __VA_ARGS__)
#define ELMO_LOG_WARN(logger, ...) \
  ELMO_LOG_AT(logger, ::elmo::LogLevel::kWarn, __VA_ARGS__)
#define ELMO_LOG_ERROR(logger, ...) \
  ELMO_LOG_AT(logger, ::elmo::LogLevel::kError, __VA_ARGS__)

}  // namespace elmo
