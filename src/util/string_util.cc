#include "util/string_util.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace elmo {

std::string TrimWhitespace(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) b++;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) e--;
  return s.substr(b, e - b);
}

std::string ToLower(const std::string& s) {
  std::string r = s;
  std::transform(r.begin(), r.end(), r.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return r;
}

std::vector<std::string> SplitString(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::vector<std::string> SplitLines(const std::string& s) {
  std::vector<std::string> out = SplitString(s, '\n');
  for (auto& line : out) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         memcmp(s.data(), prefix.data(), prefix.size()) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         memcmp(s.data() + s.size() - suffix.size(), suffix.data(),
                suffix.size()) == 0;
}

bool ContainsIgnoreCase(const std::string& haystack,
                        const std::string& needle) {
  return ToLower(haystack).find(ToLower(needle)) != std::string::npos;
}

std::optional<bool> ParseBool(const std::string& s) {
  std::string t = ToLower(TrimWhitespace(s));
  if (t == "true" || t == "1" || t == "yes" || t == "on") return true;
  if (t == "false" || t == "0" || t == "no" || t == "off") return false;
  return std::nullopt;
}

std::optional<int64_t> ParseInt64(const std::string& s) {
  std::string t = TrimWhitespace(s);
  if (t.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  long long v = strtoll(t.c_str(), &end, 10);
  if (errno != 0 || end == t.c_str()) return std::nullopt;
  // Optional size suffix.
  std::string suffix = ToLower(TrimWhitespace(std::string(end)));
  if (!suffix.empty() && (EndsWith(suffix, "ib"))) {
    suffix = suffix.substr(0, suffix.size() - 2);
  } else if (!suffix.empty() && suffix.back() == 'b' && suffix.size() > 1) {
    suffix.pop_back();
  }
  int64_t mult = 1;
  if (suffix.empty()) {
    mult = 1;
  } else if (suffix == "k") {
    mult = 1ll << 10;
  } else if (suffix == "m") {
    mult = 1ll << 20;
  } else if (suffix == "g") {
    mult = 1ll << 30;
  } else if (suffix == "t") {
    mult = 1ll << 40;
  } else {
    return std::nullopt;
  }
  return static_cast<int64_t>(v) * mult;
}

std::optional<double> ParseDouble(const std::string& s) {
  std::string t = TrimWhitespace(s);
  if (t.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  double v = strtod(t.c_str(), &end);
  if (errno != 0 || end == t.c_str() || *end != '\0') return std::nullopt;
  return v;
}

std::string FormatBytesHuman(uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  double v = static_cast<double>(bytes);
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    u++;
  }
  char buf[64];
  if (v == static_cast<uint64_t>(v)) {
    snprintf(buf, sizeof(buf), "%llu %s",
             static_cast<unsigned long long>(v), units[u]);
  } else {
    snprintf(buf, sizeof(buf), "%.1f %s", v, units[u]);
  }
  return buf;
}

std::string FormatCountHuman(uint64_t n) {
  char buf[64];
  if (n >= 1000000000ull) {
    snprintf(buf, sizeof(buf), "%.1fB", n / 1e9);
  } else if (n >= 1000000ull) {
    snprintf(buf, sizeof(buf), "%.1fM", n / 1e6);
  } else if (n >= 1000ull) {
    snprintf(buf, sizeof(buf), "%.1fK", n / 1e3);
  } else {
    snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(n));
  }
  return buf;
}

std::string ReplaceAll(std::string s, const std::string& from,
                       const std::string& to) {
  if (from.empty()) return s;
  size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

}  // namespace elmo
