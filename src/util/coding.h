// Binary encoding primitives: little-endian fixed-width integers and
// varints, plus length-prefixed slices. Used by the WAL, SST blocks and
// the manifest.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "util/slice.h"

namespace elmo {

inline void EncodeFixed32(char* dst, uint32_t value) {
  memcpy(dst, &value, sizeof(value));  // little-endian hosts only
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  memcpy(dst, &value, sizeof(value));
}

inline uint32_t DecodeFixed32(const char* ptr) {
  uint32_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

inline uint64_t DecodeFixed64(const char* ptr) {
  uint64_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

// Low-level varint encoders; return a pointer just past the last byte
// written. dst must have at least 5 (32-bit) / 10 (64-bit) bytes available.
char* EncodeVarint32(char* dst, uint32_t value);
char* EncodeVarint64(char* dst, uint64_t value);

// Parsers advance *input past the consumed bytes; return false on
// truncated/corrupt input.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);
bool GetFixed64(Slice* input, uint64_t* value);

// Pointer-based parsers used in hot paths; return nullptr on failure.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);

int VarintLength(uint64_t v);

}  // namespace elmo
