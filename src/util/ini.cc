#include "util/ini.h"

#include "util/string_util.h"

namespace elmo {

Status IniDoc::Parse(const std::string& text, IniDoc* doc,
                     std::vector<std::string>* bad_lines) {
  doc->sections_.clear();
  std::string current;
  for (const std::string& raw : SplitLines(text)) {
    std::string line = TrimWhitespace(raw);
    if (line.empty() || line[0] == '#' || line[0] == ';') continue;
    if (line[0] == '[') {
      size_t close = line.find(']');
      if (close == std::string::npos) {
        return Status::Corruption("unterminated section header", line);
      }
      current = TrimWhitespace(line.substr(1, close - 1));
      // Materialize the section even if empty.
      if (doc->FindSection(current) == nullptr) {
        doc->sections_.push_back({current, {}});
      }
      continue;
    }
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      if (bad_lines != nullptr) bad_lines->push_back(raw);
      continue;
    }
    std::string key = TrimWhitespace(line.substr(0, eq));
    std::string value = TrimWhitespace(line.substr(eq + 1));
    if (key.empty()) {
      if (bad_lines != nullptr) bad_lines->push_back(raw);
      continue;
    }
    doc->Set(current, key, value);
  }
  return Status::OK();
}

std::string IniDoc::Serialize() const {
  std::string out;
  for (const Section& sec : sections_) {
    if (!sec.name.empty()) {
      out += "[" + sec.name + "]\n";
    }
    for (const Entry& e : sec.entries) {
      out += e.key + " = " + e.value + "\n";
    }
    out += "\n";
  }
  return out;
}

IniDoc::Section* IniDoc::FindSection(const std::string& name) {
  for (auto& s : sections_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const IniDoc::Section* IniDoc::FindSection(const std::string& name) const {
  for (const auto& s : sections_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::optional<std::string> IniDoc::Get(const std::string& section,
                                       const std::string& key) const {
  const Section* s = FindSection(section);
  if (s == nullptr) return std::nullopt;
  for (const Entry& e : s->entries) {
    if (e.key == key) return e.value;
  }
  return std::nullopt;
}

void IniDoc::Set(const std::string& section, const std::string& key,
                 const std::string& value) {
  Section* s = FindSection(section);
  if (s == nullptr) {
    sections_.push_back({section, {}});
    s = &sections_.back();
  }
  for (Entry& e : s->entries) {
    if (e.key == key) {
      e.value = value;
      return;
    }
  }
  s->entries.push_back({key, value});
}

bool IniDoc::Erase(const std::string& section, const std::string& key) {
  Section* s = FindSection(section);
  if (s == nullptr) return false;
  for (auto it = s->entries.begin(); it != s->entries.end(); ++it) {
    if (it->key == key) {
      s->entries.erase(it);
      return true;
    }
  }
  return false;
}

bool IniDoc::HasSection(const std::string& name) const {
  return FindSection(name) != nullptr;
}

}  // namespace elmo
