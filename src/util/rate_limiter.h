// Token-bucket rate limiter. The engine uses it for delayed writes
// (write slowdown) and optionally for compaction I/O; rates come from
// the option file (`delayed_write_rate`, `rate_limiter_bytes_per_sec`).
//
// The limiter is clock-agnostic: callers ask "how long must I wait to
// consume N bytes at time now" so it works under both the real and the
// simulated clock.
#pragma once

#include <cstdint>
#include <mutex>

namespace elmo {

class RateLimiter {
 public:
  // bytes_per_sec == 0 disables limiting.
  explicit RateLimiter(uint64_t bytes_per_sec)
      : bytes_per_sec_(bytes_per_sec) {}

  void SetRate(uint64_t bytes_per_sec) {
    std::lock_guard<std::mutex> l(mu_);
    bytes_per_sec_ = bytes_per_sec;
  }

  uint64_t rate() const {
    std::lock_guard<std::mutex> l(mu_);
    return bytes_per_sec_;
  }

  // Consume `bytes` at time `now_micros`; returns the number of
  // microseconds the caller must delay to respect the rate.
  uint64_t Request(uint64_t bytes, uint64_t now_micros) {
    std::lock_guard<std::mutex> l(mu_);
    if (bytes_per_sec_ == 0 || bytes == 0) return 0;
    // The duration this many bytes "should" take.
    uint64_t cost_us = bytes * 1000000 / bytes_per_sec_;
    if (cost_us == 0) cost_us = 1;
    if (next_free_us_ < now_micros) next_free_us_ = now_micros;
    uint64_t wait = next_free_us_ - now_micros;
    next_free_us_ += cost_us;
    return wait;
  }

 private:
  mutable std::mutex mu_;
  uint64_t bytes_per_sec_;
  uint64_t next_free_us_ = 0;
};

}  // namespace elmo
