// Deterministic pseudo-random generators. Random is the leveldb linear
// congruential generator (fast, tiny state); Random64 is xorshift128+ for
// 64-bit streams. Both are seeded explicitly so every experiment and test
// in this repository is reproducible.
#pragma once

#include <cstdint>

namespace elmo {

class Random {
 public:
  explicit Random(uint32_t s) : seed_(s & 0x7fffffffu) {
    if (seed_ == 0 || seed_ == 2147483647L) seed_ = 1;
  }

  uint32_t Next() {
    static const uint32_t M = 2147483647L;  // 2^31-1
    static const uint64_t A = 16807;        // bits 14, 8, 7, 5, 2, 1, 0
    uint64_t product = seed_ * A;
    seed_ = static_cast<uint32_t>((product >> 31) + (product & M));
    if (seed_ > M) seed_ -= M;
    return seed_;
  }

  // Uniform in [0, n-1]; n must be > 0.
  uint32_t Uniform(int n) { return Next() % n; }

  bool OneIn(int n) { return (Next() % n) == 0; }

  // Skewed: pick base uniformly in [0, max_log], then uniform in
  // [0, 2^base - 1]. Favors small numbers exponentially.
  uint32_t Skewed(int max_log) { return Uniform(1 << Uniform(max_log + 1)); }

 private:
  uint32_t seed_;
};

class Random64 {
 public:
  explicit Random64(uint64_t seed) {
    s_[0] = seed ? seed : 0x9e3779b97f4a7c15ull;
    s_[1] = SplitMix(&s_[0]);
    s_[0] = SplitMix(&s_[1]);
  }

  uint64_t Next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t s_[2];
};

}  // namespace elmo
