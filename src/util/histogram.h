// Histogram: db_bench-style latency histogram with geometric buckets.
// Records values in microseconds and interpolates percentiles inside a
// bucket. This is the structure behind every p99 number in the
// reproduction, so percentile math is tested directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace elmo {

class Histogram {
 public:
  Histogram();

  void Clear();
  void Add(double value);
  void Merge(const Histogram& other);
  // Turn this cumulative histogram into the interval histogram
  // "this - prev" by subtracting per-bucket counts (clamped at zero, so
  // a racy snapshot pair degrades gracefully instead of underflowing).
  // min/max keep the cumulative extremes: percentiles and averages come
  // from the buckets and sums, which are exact.
  void SubtractBaseline(const Histogram& prev);

  double Median() const;
  double Percentile(double p) const;  // p in [0, 100]
  double Average() const;
  double StandardDeviation() const;
  double Min() const { return num_ == 0 ? 0.0 : min_; }
  double Max() const { return max_; }
  uint64_t Count() const { return num_; }

  // Multi-line human-readable summary, similar to db_bench's
  // "Microseconds per op" report.
  std::string ToString() const;

  static constexpr int kNumBuckets = 154;

  // Upper bound of bucket `b` (shared with AtomicHistogram, which keeps
  // its own lock-free counters over the same bucket layout).
  static double BucketUpperBound(int b);

  // Overwrite this histogram with raw state captured elsewhere
  // (AtomicHistogram snapshots). `bucket_counts` has kNumBuckets
  // entries.
  void SetRaw(double min, double max, uint64_t num, double sum,
              double sum_squares, const uint64_t* bucket_counts);

 private:
  double BucketLimit(int b) const;

  double min_;
  double max_;
  uint64_t num_;
  double sum_;
  double sum_squares_;
  std::vector<uint64_t> buckets_;
};

}  // namespace elmo
