#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace elmo::json {

const Value* Value::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = as_object().find(key);
  return it == as_object().end() ? nullptr : &it->second;
}

std::string EscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void Value::DumpTo(std::string* out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent >= 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent) * d, ' ');
    }
  };
  if (is_null()) {
    *out += "null";
  } else if (is_bool()) {
    *out += as_bool() ? "true" : "false";
  } else if (is_int()) {
    char buf[32];
    snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(as_int()));
    *out += buf;
  } else if (is_double()) {
    char buf[64];
    double d = as_double();
    if (std::isfinite(d)) {
      snprintf(buf, sizeof(buf), "%.17g", d);
      *out += buf;
    } else {
      *out += "null";  // JSON has no Inf/NaN
    }
  } else if (is_string()) {
    *out += '"' + EscapeString(as_string()) + '"';
  } else if (is_array()) {
    const Array& a = as_array();
    *out += '[';
    for (size_t i = 0; i < a.size(); i++) {
      if (i > 0) *out += ',';
      newline(depth + 1);
      a[i].DumpTo(out, indent, depth + 1);
    }
    if (!a.empty()) newline(depth);
    *out += ']';
  } else {  // object
    const Object& o = as_object();
    *out += '{';
    size_t i = 0;
    for (const auto& [k, v] : o) {
      if (i++ > 0) *out += ',';
      newline(depth + 1);
      *out += '"' + EscapeString(k) + "\":";
      if (indent >= 0) *out += ' ';
      v.DumpTo(out, indent, depth + 1);
    }
    if (!o.empty()) newline(depth);
    *out += '}';
  }
}

std::string Value::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text) : p_(text.data()), end_(p_ + text.size()) {}

  Status ParseDocument(Value* out) {
    SkipWs();
    Status s = ParseValue(out, 0);
    if (!s.ok()) return s;
    SkipWs();
    if (p_ != end_) return Status::Corruption("trailing characters in JSON");
    return Status::OK();
  }

 private:
  static constexpr int kMaxDepth = 200;

  void SkipWs() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                         *p_ == '\r')) {
      p_++;
    }
  }

  Status ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Status::Corruption("JSON nested too deeply");
    SkipWs();
    if (p_ >= end_) return Status::Corruption("unexpected end of JSON");
    switch (*p_) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': {
        std::string s;
        Status st = ParseString(&s);
        if (!st.ok()) return st;
        *out = Value(std::move(s));
        return Status::OK();
      }
      case 't':
        if (Match("true")) {
          *out = Value(true);
          return Status::OK();
        }
        return Status::Corruption("bad literal");
      case 'f':
        if (Match("false")) {
          *out = Value(false);
          return Status::OK();
        }
        return Status::Corruption("bad literal");
      case 'n':
        if (Match("null")) {
          *out = Value(nullptr);
          return Status::OK();
        }
        return Status::Corruption("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  bool Match(const char* lit) {
    const char* q = p_;
    while (*lit) {
      if (q >= end_ || *q != *lit) return false;
      q++;
      lit++;
    }
    p_ = q;
    return true;
  }

  Status ParseString(std::string* out) {
    p_++;  // opening quote
    out->clear();
    while (p_ < end_) {
      char c = *p_++;
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (p_ >= end_) break;
        char e = *p_++;
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (end_ - p_ < 4) return Status::Corruption("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; i++) {
              char h = *p_++;
              code <<= 4;
              if (h >= '0' && h <= '9') code |= h - '0';
              else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
              else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
              else return Status::Corruption("bad \\u escape");
            }
            // UTF-8 encode the BMP code point (surrogate pairs are passed
            // through as two 3-byte sequences — adequate for our use).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Status::Corruption("bad escape character");
        }
      } else {
        out->push_back(c);
      }
    }
    return Status::Corruption("unterminated string");
  }

  Status ParseNumber(Value* out) {
    const char* start = p_;
    if (p_ < end_ && *p_ == '-') p_++;
    bool is_double = false;
    while (p_ < end_ &&
           (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '.' ||
            *p_ == 'e' || *p_ == 'E' || *p_ == '+' || *p_ == '-')) {
      if (*p_ == '.' || *p_ == 'e' || *p_ == 'E') is_double = true;
      p_++;
    }
    if (p_ == start) return Status::Corruption("invalid number");
    std::string num(start, p_ - start);
    if (is_double) {
      *out = Value(strtod(num.c_str(), nullptr));
    } else {
      errno = 0;
      long long v = strtoll(num.c_str(), nullptr, 10);
      if (errno != 0) {
        *out = Value(strtod(num.c_str(), nullptr));
      } else {
        *out = Value(static_cast<int64_t>(v));
      }
    }
    return Status::OK();
  }

  Status ParseArray(Value* out, int depth) {
    p_++;  // '['
    Array arr;
    SkipWs();
    if (p_ < end_ && *p_ == ']') {
      p_++;
      *out = Value(std::move(arr));
      return Status::OK();
    }
    while (true) {
      Value v;
      Status s = ParseValue(&v, depth + 1);
      if (!s.ok()) return s;
      arr.push_back(std::move(v));
      SkipWs();
      if (p_ >= end_) return Status::Corruption("unterminated array");
      if (*p_ == ',') {
        p_++;
        continue;
      }
      if (*p_ == ']') {
        p_++;
        *out = Value(std::move(arr));
        return Status::OK();
      }
      return Status::Corruption("expected ',' or ']' in array");
    }
  }

  Status ParseObject(Value* out, int depth) {
    p_++;  // '{'
    Object obj;
    SkipWs();
    if (p_ < end_ && *p_ == '}') {
      p_++;
      *out = Value(std::move(obj));
      return Status::OK();
    }
    while (true) {
      SkipWs();
      if (p_ >= end_ || *p_ != '"') {
        return Status::Corruption("expected string key in object");
      }
      std::string key;
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      SkipWs();
      if (p_ >= end_ || *p_ != ':') {
        return Status::Corruption("expected ':' in object");
      }
      p_++;
      Value v;
      s = ParseValue(&v, depth + 1);
      if (!s.ok()) return s;
      obj[key] = std::move(v);
      SkipWs();
      if (p_ >= end_) return Status::Corruption("unterminated object");
      if (*p_ == ',') {
        p_++;
        continue;
      }
      if (*p_ == '}') {
        p_++;
        *out = Value(std::move(obj));
        return Status::OK();
      }
      return Status::Corruption("expected ',' or '}' in object");
    }
  }

  const char* p_;
  const char* end_;
};

}  // namespace

Status Parse(const std::string& text, Value* out) {
  Parser p(text);
  return p.ParseDocument(out);
}

}  // namespace elmo::json
