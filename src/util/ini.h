// Minimal INI document: ordered sections of ordered key=value pairs.
// This is the on-disk/option-file format the tuning loop reads and
// writes — the same role OPTIONS-xxxx files play for RocksDB.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/status.h"

namespace elmo {

class IniDoc {
 public:
  struct Entry {
    std::string key;
    std::string value;
  };
  struct Section {
    std::string name;  // empty for the implicit top-level section
    std::vector<Entry> entries;
  };

  IniDoc() = default;

  // Parse "key = value" lines, "[section]" headers, "#"/";" comments.
  // Malformed lines (no '=') are reported via bad_lines if non-null and
  // otherwise skipped; parse only fails on unterminated section headers.
  static Status Parse(const std::string& text, IniDoc* doc,
                      std::vector<std::string>* bad_lines = nullptr);

  std::string Serialize() const;

  // Get/set in a named section ("" = top level). Set preserves insertion
  // order and overwrites an existing key in place.
  std::optional<std::string> Get(const std::string& section,
                                 const std::string& key) const;
  void Set(const std::string& section, const std::string& key,
           const std::string& value);
  bool Erase(const std::string& section, const std::string& key);

  const std::vector<Section>& sections() const { return sections_; }
  bool HasSection(const std::string& name) const;

 private:
  Section* FindSection(const std::string& name);
  const Section* FindSection(const std::string& name) const;

  std::vector<Section> sections_;
};

}  // namespace elmo
