// CRC32C (Castagnoli) — software table implementation with the
// leveldb-style Mask/Unmask helpers used when the checksum itself is
// stored inside checksummed data.
#pragma once

#include <cstddef>
#include <cstdint>

namespace elmo::crc32c {

// Returns the crc32c of concat(A, data[0,n-1]) where init_crc is the
// crc32c of some string A.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

static const uint32_t kMaskDelta = 0xa282ead8ul;

// Rotate right 15 bits and add a constant so that a crc of a string
// containing embedded crcs does not degenerate.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

inline uint32_t Unmask(uint32_t masked_crc) {
  uint32_t rot = masked_crc - kMaskDelta;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace elmo::crc32c
