#include "util/thread_pool.h"

namespace elmo {

ThreadPool::ThreadPool(int num_threads) : target_threads_(num_threads) {
  std::lock_guard<std::mutex> l(mu_);
  for (int i = 0; i < num_threads; i++) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> l(mu_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::Submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> l(mu_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> l(mu_);
  idle_cv_.wait(l, [this] { return queue_.empty() && busy_ == 0; });
}

void ThreadPool::SetBackgroundThreads(int num_threads) {
  std::unique_lock<std::mutex> l(mu_);
  while (static_cast<int>(threads_.size()) < num_threads) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
  // Shrinking: excess workers exit when they next look for work.
  target_threads_ = num_threads;
  l.unlock();
  work_cv_.notify_all();
}

int ThreadPool::QueueLen() const {
  std::lock_guard<std::mutex> l(mu_);
  return static_cast<int>(queue_.size());
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> l(mu_);
  while (true) {
    work_cv_.wait(l, [this] { return shutting_down_ || !queue_.empty(); });
    if (shutting_down_ && queue_.empty()) return;
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    busy_++;
    l.unlock();
    job();
    l.lock();
    busy_--;
    if (queue_.empty() && busy_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace elmo
