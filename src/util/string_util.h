// Small string helpers shared by the INI/option machinery, the prompt
// generator and the LLM response parser.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace elmo {

std::string TrimWhitespace(const std::string& s);
std::string ToLower(const std::string& s);
std::vector<std::string> SplitString(const std::string& s, char delim);
// Split on newlines, handling both \n and \r\n.
std::vector<std::string> SplitLines(const std::string& s);
bool StartsWith(const std::string& s, const std::string& prefix);
bool EndsWith(const std::string& s, const std::string& suffix);
bool ContainsIgnoreCase(const std::string& haystack, const std::string& needle);

// Parse a boolean from "true"/"false"/"1"/"0" (case-insensitive).
std::optional<bool> ParseBool(const std::string& s);

// Parse a signed integer; also accepts size suffixes K/M/G/T (powers of
// 1024, case-insensitive, optional trailing "B" or "iB"), e.g. "64MB".
std::optional<int64_t> ParseInt64(const std::string& s);
std::optional<double> ParseDouble(const std::string& s);

// 1234567 -> "1234567"; human variants used in prompts/reports.
std::string FormatBytesHuman(uint64_t bytes);   // "64 MiB"
std::string FormatCountHuman(uint64_t n);       // "1.2M"

// Replace all occurrences of `from` with `to`.
std::string ReplaceAll(std::string s, const std::string& from,
                       const std::string& to);

}  // namespace elmo
