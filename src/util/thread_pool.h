// Fixed-size worker pool used by PosixEnv for background flushes and
// compactions. Priorities mirror RocksDB's HIGH (flush) / LOW
// (compaction) pools.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace elmo {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> job);

  // Block until the queue is empty and all workers are idle.
  void WaitIdle();

  // Change pool size; takes effect as workers pick up work.
  void SetBackgroundThreads(int num_threads);

  int QueueLen() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  int target_threads_;
  int busy_ = 0;
  bool shutting_down_ = false;
};

}  // namespace elmo
