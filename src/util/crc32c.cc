#include "util/crc32c.h"

#include <array>

namespace elmo::crc32c {

namespace {

// Build the 256-entry CRC32C lookup table at static-init time.
struct Table {
  std::array<uint32_t, 256> t{};
  Table() {
    const uint32_t poly = 0x82f63b78u;  // reversed 0x1EDC6F41
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t crc = i;
      for (int j = 0; j < 8; j++) {
        crc = (crc & 1) ? (crc >> 1) ^ poly : crc >> 1;
      }
      t[i] = crc;
    }
  }
};

const Table kTable;

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  uint32_t crc = init_crc ^ 0xffffffffu;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; i++) {
    crc = kTable.t[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace elmo::crc32c
