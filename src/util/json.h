// Mini JSON value + parser/serializer. Exists so the OpenAI chat
// protocol module (src/llm/openai_protocol.*) can build and parse real
// API payloads offline; it is deliberately small (no streaming, no
// numbers beyond double/int64).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "util/status.h"

namespace elmo::json {

class Value;
using Array = std::vector<Value>;
// std::map keeps key order deterministic for serialization/tests.
using Object = std::map<std::string, Value>;

class Value {
 public:
  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}            // NOLINT
  Value(bool b) : v_(b) {}                          // NOLINT
  Value(int64_t i) : v_(i) {}                       // NOLINT
  Value(int i) : v_(static_cast<int64_t>(i)) {}     // NOLINT
  Value(double d) : v_(d) {}                        // NOLINT
  Value(const char* s) : v_(std::string(s)) {}      // NOLINT
  Value(std::string s) : v_(std::move(s)) {}        // NOLINT
  Value(Array a) : v_(std::move(a)) {}              // NOLINT
  Value(Object o) : v_(std::move(o)) {}             // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  int64_t as_int() const {
    return is_double() ? static_cast<int64_t>(std::get<double>(v_))
                       : std::get<int64_t>(v_);
  }
  double as_double() const {
    return is_int() ? static_cast<double>(std::get<int64_t>(v_))
                    : std::get<double>(v_);
  }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const Array& as_array() const { return std::get<Array>(v_); }
  Array& as_array() { return std::get<Array>(v_); }
  const Object& as_object() const { return std::get<Object>(v_); }
  Object& as_object() { return std::get<Object>(v_); }

  // Object lookup; returns nullptr when absent or not an object.
  const Value* Find(const std::string& key) const;

  std::string Dump(int indent = -1) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array,
               Object>
      v_;
};

// Parse a complete JSON document. Trailing garbage is an error.
Status Parse(const std::string& text, Value* out);

std::string EscapeString(const std::string& s);

}  // namespace elmo::json
