#include "util/logging.h"

#include <cstdio>
#include <iterator>

namespace elmo {

void Logger::Log(LogLevel level, const char* format, ...) {
  va_list ap;
  va_start(ap, format);
  Logv(level, format, ap);
  va_end(ap);
}

std::string FormatLogLine(LogLevel level, const char* format, va_list ap) {
  if (format == nullptr) format = "";
  const char* tag = "";
  switch (level) {
    case LogLevel::kDebug: tag = "[DEBUG] "; break;
    case LogLevel::kInfo:  tag = "[INFO] ";  break;
    case LogLevel::kWarn:  tag = "[WARN] ";  break;
    case LogLevel::kError: tag = "[ERROR] "; break;
  }
  char stack_buf[1024];
  va_list ap_copy;
  va_copy(ap_copy, ap);
  int n = vsnprintf(stack_buf, sizeof(stack_buf), format, ap_copy);
  va_end(ap_copy);
  std::string line(tag);
  if (n < 0) {
    line += "<format error>";
  } else if (static_cast<size_t>(n) < sizeof(stack_buf)) {
    line += stack_buf;
  } else {
    std::string big(n + 1, '\0');
    vsnprintf(big.data(), big.size(), format, ap);
    big.resize(n);
    line += big;
  }
  return line;
}

void BufferLogger::Logv(LogLevel level, const char* format, va_list ap) {
  if (level < min_level_) return;
  std::string line = FormatLogLine(level, format, ap);
  std::lock_guard<std::mutex> l(mu_);
  lines_.push_back(std::move(line));
  while (lines_.size() > max_lines_) {
    lines_.pop_front();
    dropped_++;
  }
}

std::vector<std::string> BufferLogger::TakeLines() {
  std::lock_guard<std::mutex> l(mu_);
  std::vector<std::string> out(std::make_move_iterator(lines_.begin()),
                               std::make_move_iterator(lines_.end()));
  lines_.clear();
  return out;
}

uint64_t BufferLogger::dropped_lines() const {
  std::lock_guard<std::mutex> l(mu_);
  return dropped_;
}

std::string BufferLogger::Contents() const {
  std::lock_guard<std::mutex> l(mu_);
  std::string out;
  for (const auto& line : lines_) {
    out += line;
    out += '\n';
  }
  return out;
}

void StderrLogger::Logv(LogLevel level, const char* format, va_list ap) {
  if (level < min_level_) return;
  std::string line = FormatLogLine(level, format, ap);
  fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace elmo
