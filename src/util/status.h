// Status: result type for operations that can fail without exceptions.
// Modeled after leveldb/rocksdb Status; success path is allocation-free.
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "util/slice.h"

namespace elmo {

class Status {
 public:
  Status() noexcept = default;  // OK

  static Status OK() { return Status(); }
  static Status NotFound(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kNotFound, msg, msg2);
  }
  static Status Corruption(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kCorruption, msg, msg2);
  }
  static Status NotSupported(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kNotSupported, msg, msg2);
  }
  static Status InvalidArgument(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kInvalidArgument, msg, msg2);
  }
  static Status IOError(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kIOError, msg, msg2);
  }
  static Status Busy(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kBusy, msg, msg2);
  }
  static Status Aborted(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kAborted, msg, msg2);
  }
  static Status NoSpace(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kNoSpace, msg, msg2);
  }
  // An IOError the environment expects to clear on its own (transient
  // fault, saturated device queue). The ErrorHandler auto-resumes from
  // these; plain IOErrors are treated as permanent media failures.
  static Status RetryableIOError(const Slice& msg,
                                 const Slice& msg2 = Slice()) {
    Status s(kIOError, msg, msg2);
    s.rep_->retryable = true;
    return s;
  }

  bool ok() const { return rep_ == nullptr; }
  bool IsNotFound() const { return code() == kNotFound; }
  bool IsCorruption() const { return code() == kCorruption; }
  bool IsNotSupported() const { return code() == kNotSupported; }
  bool IsInvalidArgument() const { return code() == kInvalidArgument; }
  bool IsIOError() const { return code() == kIOError; }
  bool IsBusy() const { return code() == kBusy; }
  bool IsAborted() const { return code() == kAborted; }
  bool IsNoSpace() const { return code() == kNoSpace; }
  bool IsRetryable() const { return rep_ != nullptr && rep_->retryable; }

  std::string ToString() const {
    if (ok()) return "OK";
    const char* type = nullptr;
    switch (rep_->code) {
      case kNotFound:        type = "NotFound: "; break;
      case kCorruption:      type = "Corruption: "; break;
      case kNotSupported:    type = "Not implemented: "; break;
      case kInvalidArgument: type = "Invalid argument: "; break;
      case kIOError:         type = "IO error: "; break;
      case kBusy:            type = "Busy: "; break;
      case kAborted:         type = "Aborted: "; break;
      case kNoSpace:         type = "No space: "; break;
      default:               type = "Unknown: "; break;
    }
    std::string out = std::string(type) + rep_->msg;
    if (rep_->retryable) out += " (retryable)";
    return out;
  }

 private:
  enum Code {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kNotSupported = 3,
    kInvalidArgument = 4,
    kIOError = 5,
    kBusy = 6,
    kAborted = 7,
    kNoSpace = 8,
  };

  struct Rep {
    Code code;
    std::string msg;
    bool retryable = false;
  };

  Status(Code code, const Slice& msg, const Slice& msg2)
      : rep_(std::make_shared<Rep>()) {
    rep_->code = code;
    rep_->msg = msg.ToString();
    if (!msg2.empty()) {
      rep_->msg += ": ";
      rep_->msg += msg2.ToString();
    }
  }

  Code code() const { return rep_ == nullptr ? kOk : rep_->code; }

  // shared_ptr keeps Status copyable cheaply; error paths are rare.
  std::shared_ptr<Rep> rep_;
};

}  // namespace elmo
