// Rule-based root-cause engine: correlates detector anomalies with the
// latest IntervalSample (per-level files, memtable pressure, compaction
// debt, cache behavior, span-phase shares) and the engine's static
// option values to emit ranked Diagnosis verdicts — symptom, cause,
// concrete evidence strings, and the options a tuner should move.
// Pure functions of their inputs: deterministic, no clock, no state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lsm/options.h"
#include "lsm/stats_sampler.h"
#include "monitor/detector.h"
#include "util/json.h"

namespace elmo::monitor {

// The static option values the rules compare dynamic state against.
// Extracted from Options (live DB) or re-parsed from the "options" LOG
// event (offline replay).
struct EngineInfo {
  int level0_file_num_compaction_trigger = 4;
  int level0_slowdown_writes_trigger = 20;
  int level0_stop_writes_trigger = 36;
  int max_write_buffer_number = 2;
  uint64_t write_buffer_size = 64ull << 20;
  int max_background_jobs = 2;
  uint64_t block_cache_size = 8ull << 20;
  int bloom_filter_bits_per_key = 0;
  uint64_t soft_pending_compaction_bytes_limit = 64ull << 30;

  static EngineInfo FromOptions(const lsm::Options& options);
};

struct Diagnosis {
  std::string rule;     // stable identifier, e.g. "l0_compaction_backlog"
  double severity = 0;  // 0..1; report status derives from the max
  std::string symptom;
  std::string cause;
  std::vector<std::string> evidence;
  std::vector<std::string> suggested_options;

  std::string ToString() const;
  json::Object ToJson() const;
};

Diagnosis DiagnosisFromJson(const json::Value& obj);

// Evaluate every rule against the latest sample (`recent.back()`),
// using `recent` for short-horizon context and `anomalies` for events
// confirmed in the diagnosis window. Returns diagnoses sorted by
// severity (desc), rule name as the deterministic tie-break.
std::vector<Diagnosis> Diagnose(
    const std::vector<lsm::IntervalSample>& recent,
    const std::vector<AnomalyEvent>& anomalies, const EngineInfo& info);

}  // namespace elmo::monitor
