// Streaming anomaly & workload phase-shift detector over the
// StatsSampler's IntervalSample stream. Per tracked metric it keeps a
// short reference window of recent values and flags a level shift when
// the incoming value clears both a z-score gate (mean/variance of the
// window) and a practical-significance gate (relative change for
// magnitude metrics, absolute delta for share/ratio metrics), confirmed
// over `confirm` consecutive ticks so a single noisy interval never
// fires. Compaction debt additionally gets a monotone-trend test: debt
// that only ever rises is a backlog even if no single step is large.
//
// Everything is plain arithmetic over the sample fields — no wall
// clock, no randomness — so runs under SimEnv are byte-deterministic.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "lsm/stats_sampler.h"
#include "util/json.h"

namespace elmo::monitor {

// Metrics the detector watches. Share metrics (fractions in [0,1]) use
// the absolute-delta significance gate; the rest use the relative gate.
enum class Metric : int {
  kOpsPerSec = 0,      // (ops + seeks) / interval — phase-robust rate
  kStallFraction,      // share
  kCompactionDebt,     // pending_compaction_bytes gauge (+ trend test)
  kCacheHitRatio,      // share; skipped when no lookups this interval
  kWalSyncShare,       // span_wal_sync_us / interval — share
  kWriteShare,         // writes / (ops + seeks) — workload phase, share
  kScanShare,          // seeks / (ops + seeks) — workload phase, share
  kMetricMax,
};

const char* MetricName(Metric m);

enum class AnomalyKind : int {
  kLevelShift = 0,  // step change vs the reference window
  kTrend,           // sustained monotone drift (compaction debt only)
};

struct AnomalyEvent {
  uint64_t ts_us = 0;
  Metric metric = Metric::kOpsPerSec;
  AnomalyKind kind = AnomalyKind::kLevelShift;
  int direction = 0;        // +1 rising, -1 falling
  bool phase_shift = false; // true for workload-mix metrics
  double before = 0;        // reference-window mean (or trend start)
  double after = 0;         // confirmed post-change value
  double zscore = 0;        // 0 when the window variance was ~0

  std::string ToString() const;
  json::Object ToJson() const;
};

AnomalyEvent AnomalyEventFromJson(const json::Value& obj);

struct DetectorConfig {
  // Reference-window length and the minimum history before any
  // detection is attempted.
  int window = 6;
  int min_history = 4;
  // Consecutive deviating ticks required to confirm an event. With the
  // deviation tick itself this keeps detection latency at
  // `confirm` intervals — within the issue's 3-interval budget.
  int confirm = 2;
  // z-score gate (generous: SimEnv windows have tiny variance).
  double z_threshold = 4.0;
  // Practical-significance gates: relative change for magnitude
  // metrics, absolute delta for share metrics.
  double rel_threshold = 0.30;
  double share_abs_threshold = 0.20;
  // Ticks after a fired event during which the metric only re-learns.
  int cooldown = 4;
  // Relative-gate floors: changes around means smaller than this are
  // noise, not signal (e.g. ops/s flapping between 3 and 5).
  double ops_per_sec_floor = 1000.0;
  double debt_floor = 1.0 * (1 << 20);  // 1 MiB
  // Trend test (compaction debt): consecutive strictly-rising ticks
  // required, and the minimum total rise relative to the start value.
  int trend_confirm = 5;
  double trend_min_ratio = 1.5;
};

// Streaming detector: feed every IntervalSample in order; each call
// returns the events confirmed at that tick (usually empty).
class ChangepointDetector {
 public:
  explicit ChangepointDetector(const DetectorConfig& config);

  std::vector<AnomalyEvent> Observe(const lsm::IntervalSample& s);

  uint64_t ticks_observed() const { return ticks_; }

 private:
  struct MetricState {
    std::deque<double> window;   // accepted reference values
    std::deque<double> pending;  // consecutive deviating values
    int pending_direction = 0;
    int cooldown_left = 0;
    // Trend tracking.
    int rises = 0;
    double trend_start = 0;
    double last_value = 0;
    bool has_last = false;
  };

  // Returns true when the metric has a value this tick (e.g. the cache
  // hit ratio is undefined on an interval with zero lookups).
  static bool ExtractMetric(const lsm::IntervalSample& s, Metric m,
                            double* value);

  void ObserveMetric(Metric m, double value, uint64_t ts_us,
                     std::vector<AnomalyEvent>* out);
  void ObserveTrend(Metric m, double value, uint64_t ts_us,
                    std::vector<AnomalyEvent>* out);

  const DetectorConfig config_;
  MetricState state_[static_cast<int>(Metric::kMetricMax)];
  uint64_t ticks_ = 0;
};

// Offline convenience: run a fresh detector over a whole series.
std::vector<AnomalyEvent> DetectSeries(
    const std::vector<lsm::IntervalSample>& samples,
    const DetectorConfig& config = DetectorConfig());

}  // namespace elmo::monitor
