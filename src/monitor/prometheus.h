// Prometheus text-exposition renderer (text/plain; version 0.0.4) for
// the engine's telemetry: every ticker as a counter, engine gauges,
// per-level file counts and compaction byte flows with level labels,
// histogram p50/p99/p999 as summaries, and the health verdict as an
// enum-style gauge. Pure string rendering over a snapshot struct, so
// the same inputs always produce the same bytes; DBImpl writes it to
// Options::metrics_export_path on every sampler tick, and elmo_top can
// render a static frame from a scraped file.
#pragma once

#include <cstdint>
#include <string>

#include "lsm/stats.h"
#include "lsm/stats_sampler.h"
#include "monitor/health_monitor.h"

namespace elmo::monitor {

struct PrometheusInputs {
  lsm::StatsSnapshot stats;
  // Per-level state; entries [0, num_levels).
  int num_levels = 0;
  int level_files[lsm::DbStats::kMaxLevels] = {};
  uint64_t level_read_bytes[lsm::DbStats::kMaxLevels] = {};
  uint64_t level_write_bytes[lsm::DbStats::kMaxLevels] = {};
  uint64_t level_compactions[lsm::DbStats::kMaxLevels] = {};
  // Instantaneous gauges.
  uint64_t memtable_bytes = 0;
  int imm_count = 0;
  uint64_t pending_compaction_bytes = 0;
  uint64_t block_cache_usage = 0;
  uint64_t block_cache_capacity = 0;
  // Sampler self-observability.
  uint64_t sampler_samples = 0;
  uint64_t sampler_ring_dropped = 0;
  uint64_t sampler_late_ticks = 0;
  uint64_t sampler_interval_us = 0;
  // Health summary (0 = ok, 1 = warn, 2 = critical).
  int health_status = 0;
  double health_top_severity = 0;
  std::string health_top_rule;  // empty when no diagnosis active
  // Background-error state (0 = none, 1 = soft, 2 = hard, 3 = fatal);
  // source/kind are empty while healthy. elmo_top renders a degraded-
  // state banner from these.
  int bg_error_severity = 0;
  std::string bg_error_source;
  std::string bg_error_kind;
  int bg_error_retry_count = 0;
  // Engine clock at render time.
  uint64_t ts_us = 0;
};

// Stable snake_case metric stem for a ticker, without the "elmo_"
// prefix or "_total" suffix (e.g. kBytesWritten -> "bytes_written").
const char* TickerPromName(lsm::Ticker t);

std::string RenderPrometheus(const PrometheusInputs& in);

}  // namespace elmo::monitor
