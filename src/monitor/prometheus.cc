#include "monitor/prometheus.h"

#include <cstdio>

namespace elmo::monitor {

const char* TickerPromName(lsm::Ticker t) {
  using lsm::Ticker;
  switch (t) {
    case Ticker::kBytesWritten: return "bytes_written";
    case Ticker::kBytesRead: return "bytes_read";
    case Ticker::kWalBytes: return "wal_bytes";
    case Ticker::kFlushCount: return "flushes";
    case Ticker::kFlushBytes: return "flush_bytes";
    case Ticker::kCompactionCount: return "compactions";
    case Ticker::kCompactionBytesRead: return "compaction_bytes_read";
    case Ticker::kCompactionBytesWritten: return "compaction_bytes_written";
    case Ticker::kTrivialMoveCount: return "trivial_moves";
    case Ticker::kWriteStallMicros: return "write_stall_micros";
    case Ticker::kWriteSlowdownCount: return "write_slowdowns";
    case Ticker::kWriteStopCount: return "write_stops";
    case Ticker::kGetHit: return "get_hits";
    case Ticker::kGetMiss: return "get_misses";
    case Ticker::kSeekCount: return "seeks";
    case Ticker::kWriteCount: return "writes";
    case Ticker::kDeleteCount: return "deletes";
    case Ticker::kWalSyncs: return "wal_syncs";
    case Ticker::kStallL0SlowdownCount: return "stall_l0_slowdowns";
    case Ticker::kStallL0StopCount: return "stall_l0_stops";
    case Ticker::kStallMemtableStopCount: return "stall_memtable_stops";
    case Ticker::kBlockCacheHit: return "block_cache_hits";
    case Ticker::kBlockCacheMiss: return "block_cache_misses";
    case Ticker::kInfoLogDroppedLines: return "info_log_dropped_lines";
    case Ticker::kInfoLogWriteFailures: return "info_log_write_failures";
    case Ticker::kOptionsChanges: return "options_changes";
    // The per-severity error tickers render as one labelled counter
    // (elmo_background_errors_total{severity=...}) instead of the
    // auto-generated per-ticker stems; see RenderPrometheus.
    case Ticker::kBackgroundErrorsSoft:
    case Ticker::kBackgroundErrorsHard:
    case Ticker::kBackgroundErrorsFatal: return nullptr;
    case Ticker::kAutoResumeAttempts: return "auto_resume_attempts";
    case Ticker::kAutoResumeSuccess: return "auto_resume_success";
    case Ticker::kAutoResumeFailure: return "auto_resume_failure";
    case Ticker::kTickerMax: break;
  }
  return "unknown";
}

namespace {

// Snake-case stem for a histogram ("get micros" -> "get_micros").
std::string HistogramPromName(lsm::HistogramType h) {
  std::string name = lsm::HistogramTypeName(h);
  for (char& c : name) {
    if (c == ' ') c = '_';
  }
  return name;
}

void AppendCounter(std::string* out, const std::string& name,
                   const char* help, uint64_t value) {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "# HELP elmo_%s_total %s\n"
           "# TYPE elmo_%s_total counter\n"
           "elmo_%s_total %llu\n",
           name.c_str(), help, name.c_str(), name.c_str(),
           (unsigned long long)value);
  *out += buf;
}

void AppendGaugeHeader(std::string* out, const std::string& name,
                       const char* help) {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "# HELP elmo_%s %s\n"
           "# TYPE elmo_%s gauge\n",
           name.c_str(), help, name.c_str());
  *out += buf;
}

void AppendGauge(std::string* out, const std::string& name, const char* help,
                 uint64_t value) {
  AppendGaugeHeader(out, name, help);
  char buf[128];
  snprintf(buf, sizeof(buf), "elmo_%s %llu\n", name.c_str(),
           (unsigned long long)value);
  *out += buf;
}

}  // namespace

std::string RenderPrometheus(const PrometheusInputs& in) {
  std::string out;
  out.reserve(8192);

  // --- tickers: monotone counters.
  for (int i = 0; i < static_cast<int>(lsm::Ticker::kTickerMax); i++) {
    const auto t = static_cast<lsm::Ticker>(i);
    const char* name = TickerPromName(t);
    if (name == nullptr) continue;  // rendered as a labelled series below
    AppendCounter(&out, name, "engine ticker", in.stats.Get(t));
  }

  // --- background errors, labelled by severity.
  {
    char ebuf[192];
    out +=
        "# HELP elmo_background_errors_total background failures entering "
        "an error state\n"
        "# TYPE elmo_background_errors_total counter\n";
    static const struct {
      const char* label;
      lsm::Ticker ticker;
    } kSeverities[] = {
        {"soft", lsm::Ticker::kBackgroundErrorsSoft},
        {"hard", lsm::Ticker::kBackgroundErrorsHard},
        {"fatal", lsm::Ticker::kBackgroundErrorsFatal},
    };
    for (const auto& sev : kSeverities) {
      snprintf(ebuf, sizeof(ebuf),
               "elmo_background_errors_total{severity=\"%s\"} %llu\n",
               sev.label, (unsigned long long)in.stats.Get(sev.ticker));
      out += ebuf;
    }
  }

  // --- per-level state, labelled by level.
  char buf[256];
  AppendGaugeHeader(&out, "level_files", "SST files at each level");
  for (int l = 0; l < in.num_levels; l++) {
    snprintf(buf, sizeof(buf), "elmo_level_files{level=\"%d\"} %d\n", l,
             in.level_files[l]);
    out += buf;
  }
  out +=
      "# HELP elmo_level_read_bytes_total compaction input bytes read "
      "from each level\n"
      "# TYPE elmo_level_read_bytes_total counter\n";
  for (int l = 0; l < in.num_levels; l++) {
    snprintf(buf, sizeof(buf),
             "elmo_level_read_bytes_total{level=\"%d\"} %llu\n", l,
             (unsigned long long)in.level_read_bytes[l]);
    out += buf;
  }
  out +=
      "# HELP elmo_level_write_bytes_total bytes written into each level\n"
      "# TYPE elmo_level_write_bytes_total counter\n";
  for (int l = 0; l < in.num_levels; l++) {
    snprintf(buf, sizeof(buf),
             "elmo_level_write_bytes_total{level=\"%d\"} %llu\n", l,
             (unsigned long long)in.level_write_bytes[l]);
    out += buf;
  }
  out +=
      "# HELP elmo_level_compactions_total compactions whose output "
      "landed at each level\n"
      "# TYPE elmo_level_compactions_total counter\n";
  for (int l = 0; l < in.num_levels; l++) {
    snprintf(buf, sizeof(buf),
             "elmo_level_compactions_total{level=\"%d\"} %llu\n", l,
             (unsigned long long)in.level_compactions[l]);
    out += buf;
  }

  // --- gauges.
  AppendGauge(&out, "memtable_bytes", "active + immutable memtable bytes",
              in.memtable_bytes);
  AppendGauge(&out, "immutable_memtables", "immutable memtables queued",
              static_cast<uint64_t>(in.imm_count < 0 ? 0 : in.imm_count));
  AppendGauge(&out, "pending_compaction_bytes",
              "estimated compaction debt bytes", in.pending_compaction_bytes);
  AppendGauge(&out, "block_cache_usage_bytes", "bytes charged to block cache",
              in.block_cache_usage);
  AppendGauge(&out, "block_cache_capacity_bytes", "block cache capacity",
              in.block_cache_capacity);

  // --- sampler self-observability.
  AppendGauge(&out, "sampler_samples", "interval samples currently retained",
              in.sampler_samples);
  AppendCounter(&out, "sampler_ring_dropped",
                "samples evicted from the history ring",
                in.sampler_ring_dropped);
  AppendCounter(&out, "sampler_late_ticks",
                "sampler ticks at least one interval late",
                in.sampler_late_ticks);
  AppendGauge(&out, "sampler_interval_us", "configured sampling interval",
              in.sampler_interval_us);

  // --- histogram quantiles as summaries.
  for (int i = 0; i < static_cast<int>(lsm::HistogramType::kHistogramMax);
       i++) {
    const auto t = static_cast<lsm::HistogramType>(i);
    const auto& h = in.stats.GetHistogram(t);
    const std::string name = HistogramPromName(t);
    snprintf(buf, sizeof(buf),
             "# HELP elmo_%s engine histogram\n"
             "# TYPE elmo_%s summary\n",
             name.c_str(), name.c_str());
    out += buf;
    snprintf(buf, sizeof(buf), "elmo_%s{quantile=\"0.5\"} %.1f\n",
             name.c_str(), h.Median());
    out += buf;
    snprintf(buf, sizeof(buf), "elmo_%s{quantile=\"0.99\"} %.1f\n",
             name.c_str(), h.Percentile(99.0));
    out += buf;
    snprintf(buf, sizeof(buf), "elmo_%s{quantile=\"0.999\"} %.1f\n",
             name.c_str(), h.Percentile(99.9));
    out += buf;
    snprintf(buf, sizeof(buf), "elmo_%s_sum %.1f\n", name.c_str(),
             h.Average() * static_cast<double>(h.Count()));
    out += buf;
    snprintf(buf, sizeof(buf), "elmo_%s_count %llu\n", name.c_str(),
             (unsigned long long)h.Count());
    out += buf;
  }

  // --- health verdict.
  AppendGauge(&out, "health_status",
              "health verdict: 0 ok, 1 warn, 2 critical",
              static_cast<uint64_t>(in.health_status));
  AppendGaugeHeader(&out, "health_top_severity",
                    "severity of the top-ranked diagnosis");
  snprintf(buf, sizeof(buf), "elmo_health_top_severity{rule=\"%s\"} %.3f\n",
           in.health_top_rule.c_str(), in.health_top_severity);
  out += buf;

  // --- background-error state (degraded-mode banner source).
  AppendGauge(&out, "background_error_severity",
              "active background error: 0 none, 1 soft, 2 hard, 3 fatal",
              static_cast<uint64_t>(in.bg_error_severity));
  if (in.bg_error_severity > 0) {
    AppendGaugeHeader(&out, "background_error_state",
                      "active background-error classification");
    snprintf(buf, sizeof(buf),
             "elmo_background_error_state{source=\"%s\",kind=\"%s\"} %d\n",
             in.bg_error_source.c_str(), in.bg_error_kind.c_str(),
             in.bg_error_retry_count);
    out += buf;
  }

  AppendGauge(&out, "engine_clock_us", "engine clock at render time",
              in.ts_us);
  return out;
}

}  // namespace elmo::monitor
