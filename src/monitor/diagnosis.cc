#include "monitor/diagnosis.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace elmo::monitor {

namespace {

double Round3(double v) {
  const double shifted = v * 1000.0 + (v >= 0 ? 0.5 : -0.5);
  return static_cast<double>(static_cast<int64_t>(shifted)) / 1000.0;
}

std::string Fmt(const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return buf;
}

double MiB(uint64_t bytes) {
  return static_cast<double>(bytes) / (1 << 20);
}

bool HasAnomaly(const std::vector<AnomalyEvent>& anomalies, Metric m,
                int direction, const AnomalyEvent** found = nullptr) {
  // Latest match wins so evidence cites the most recent event.
  for (auto it = anomalies.rbegin(); it != anomalies.rend(); ++it) {
    if (it->metric == m && (direction == 0 || it->direction == direction)) {
      if (found != nullptr) *found = &*it;
      return true;
    }
  }
  return false;
}

// Mean span-phase share of foreground time over the recent window; the
// denominator is the sampled interval, so shares are comparable across
// ticks.
double MeanShare(const std::vector<lsm::IntervalSample>& recent,
                 uint64_t lsm::IntervalSample::*field) {
  if (recent.empty()) return 0;
  double sum = 0;
  int n = 0;
  for (const auto& s : recent) {
    if (s.interval_us == 0) continue;
    sum += std::min(1.0, static_cast<double>(s.*field) /
                             static_cast<double>(s.interval_us));
    n++;
  }
  return n > 0 ? sum / n : 0;
}

}  // namespace

EngineInfo EngineInfo::FromOptions(const lsm::Options& options) {
  EngineInfo info;
  info.level0_file_num_compaction_trigger =
      options.level0_file_num_compaction_trigger;
  info.level0_slowdown_writes_trigger = options.level0_slowdown_writes_trigger;
  info.level0_stop_writes_trigger = options.level0_stop_writes_trigger;
  info.max_write_buffer_number = options.max_write_buffer_number;
  info.write_buffer_size = options.write_buffer_size;
  info.max_background_jobs = options.max_background_jobs;
  info.block_cache_size = options.block_cache_size;
  info.bloom_filter_bits_per_key = options.bloom_filter_bits_per_key;
  info.soft_pending_compaction_bytes_limit =
      options.soft_pending_compaction_bytes_limit;
  return info;
}

std::string Diagnosis::ToString() const {
  std::string out =
      Fmt("[%.2f] %s: %s — %s", severity, rule.c_str(), symptom.c_str(),
          cause.c_str());
  for (const std::string& e : evidence) {
    out += "\n    evidence: ";
    out += e;
  }
  if (!suggested_options.empty()) {
    out += "\n    suggest: ";
    for (size_t i = 0; i < suggested_options.size(); i++) {
      if (i > 0) out += ", ";
      out += suggested_options[i];
    }
  }
  return out;
}

json::Object Diagnosis::ToJson() const {
  json::Object o;
  o["rule"] = rule;
  o["severity"] = Round3(severity);
  o["symptom"] = symptom;
  o["cause"] = cause;
  json::Array ev;
  for (const std::string& e : evidence) ev.emplace_back(e);
  o["evidence"] = std::move(ev);
  json::Array sugg;
  for (const std::string& s : suggested_options) sugg.emplace_back(s);
  o["suggested_options"] = std::move(sugg);
  return o;
}

Diagnosis DiagnosisFromJson(const json::Value& obj) {
  Diagnosis d;
  const json::Value* v;
  if ((v = obj.Find("rule")) != nullptr && v->is_string()) {
    d.rule = v->as_string();
  }
  if ((v = obj.Find("severity")) != nullptr && v->is_number()) {
    d.severity = v->as_double();
  }
  if ((v = obj.Find("symptom")) != nullptr && v->is_string()) {
    d.symptom = v->as_string();
  }
  if ((v = obj.Find("cause")) != nullptr && v->is_string()) {
    d.cause = v->as_string();
  }
  if ((v = obj.Find("evidence")) != nullptr && v->is_array()) {
    for (const json::Value& e : v->as_array()) {
      if (e.is_string()) d.evidence.push_back(e.as_string());
    }
  }
  if ((v = obj.Find("suggested_options")) != nullptr && v->is_array()) {
    for (const json::Value& s : v->as_array()) {
      if (s.is_string()) d.suggested_options.push_back(s.as_string());
    }
  }
  return d;
}

std::vector<Diagnosis> Diagnose(
    const std::vector<lsm::IntervalSample>& recent,
    const std::vector<AnomalyEvent>& anomalies, const EngineInfo& info) {
  std::vector<Diagnosis> out;
  if (recent.empty()) return out;
  const lsm::IntervalSample& s = recent.back();

  const double stall = s.stall_fraction;
  const double flush_share =
      MeanShare(recent, &lsm::IntervalSample::span_memtable_us);
  const double wal_share =
      MeanShare(recent, &lsm::IntervalSample::span_wal_sync_us);
  const double probe_share =
      MeanShare(recent, &lsm::IntervalSample::span_sst_probe_us);

  // --- background_error: the engine is degraded; everything else is
  // secondary until the error clears (or the DB is reopened).
  if (s.bg_error_severity > 0) {
    Diagnosis d;
    d.rule = "background_error";
    // soft=1 -> 0.8, hard=2 -> 0.9, fatal=3 -> 1.0.
    d.severity = std::min(1.0, 0.7 + 0.1 * s.bg_error_severity);
    d.symptom = s.bg_error_severity >= 3
                    ? "fatal background error: reopen required"
                    : (s.bg_error_severity == 2
                           ? "read-only degraded: writes fail fast"
                           : "writes stalled pending auto-resume");
    d.cause = "a background failure (WAL/flush/compaction/manifest) put "
              "the engine in an error state";
    d.evidence.push_back(Fmt("bg_error_severity %d", s.bg_error_severity));
    d.evidence.push_back(
        Fmt("interval bg errors %llu, resume failures %llu",
            (unsigned long long)s.bg_errors,
            (unsigned long long)s.auto_resume_failures));
    d.evidence.push_back(Fmt("stall fraction %.3f", Round3(stall)));
    d.suggested_options = {};
    out.push_back(std::move(d));
  }

  // --- auto_resume: recovery churn — the engine healed itself (possibly
  // repeatedly), so throughput dips trace to error episodes, not tuning.
  if (s.bg_error_severity == 0 &&
      (s.auto_resume_successes > 0 || s.auto_resume_failures > 0)) {
    Diagnosis d;
    d.rule = "auto_resume";
    d.severity =
        std::min(0.6, 0.25 + 0.05 * static_cast<double>(
                                        s.auto_resume_successes +
                                        s.auto_resume_failures));
    d.symptom = "transient background errors auto-recovered";
    d.cause = "the env returned retryable failures; auto-resume re-synced "
              "and rescheduled the affected work";
    d.evidence.push_back(
        Fmt("interval resume successes %llu, failures %llu",
            (unsigned long long)s.auto_resume_successes,
            (unsigned long long)s.auto_resume_failures));
    d.evidence.push_back(Fmt("interval bg errors %llu",
                             (unsigned long long)s.bg_errors));
    d.suggested_options = {};
    out.push_back(std::move(d));
  }

  // --- l0_compaction_backlog: L0 file pileup throttling the write path.
  {
    const int l0 = s.l0_files;
    const int slowdown = info.level0_slowdown_writes_trigger;
    const int stop = info.level0_stop_writes_trigger;
    double sev = 0;
    if (l0 >= stop) {
      sev = 1.0;
    } else if (l0 >= slowdown) {
      sev = 0.75 + 0.25 * static_cast<double>(l0 - slowdown) /
                       std::max(1, stop - slowdown);
    } else if (l0 >= slowdown / 2 && stall > 0.05) {
      sev = 0.5 + std::min(0.2, stall);
    }
    if (sev > 0) {
      Diagnosis d;
      d.rule = "l0_compaction_backlog";
      d.severity = std::min(1.0, sev);
      d.symptom = l0 >= slowdown
                      ? "write throughput throttled by L0 stall"
                      : "write path slowed by L0 pressure";
      d.cause = "L0 files accumulating faster than compaction drains them";
      d.evidence.push_back(
          Fmt("l0 files %d vs slowdown trigger %d / stop trigger %d", l0,
              slowdown, stop));
      d.evidence.push_back(Fmt("stall fraction %.3f", Round3(stall)));
      d.evidence.push_back(Fmt("pending compaction %.1f MiB",
                               MiB(s.pending_compaction_bytes)));
      if (flush_share > 0.05) {
        d.evidence.push_back(
            Fmt("memtable span share %.0f%%", flush_share * 100));
      }
      d.suggested_options = {"max_background_jobs",
                             "level0_slowdown_writes_trigger",
                             "write_buffer_size"};
      out.push_back(std::move(d));
    }
  }

  // --- memtable_stall: immutable memtables backed up behind flush.
  if (info.max_write_buffer_number > 1 &&
      s.imm_count >= info.max_write_buffer_number - 1) {
    Diagnosis d;
    d.rule = "memtable_stall";
    d.severity = std::min(1.0, 0.6 + stall);
    d.symptom = "writes waiting on memtable flush";
    d.cause = "all memtable slots full; flush cannot keep up";
    d.evidence.push_back(Fmt("immutable memtables %d of %d slots",
                             s.imm_count, info.max_write_buffer_number));
    d.evidence.push_back(
        Fmt("memtable bytes %.1f MiB (buffer %.1f MiB)",
            MiB(s.memtable_bytes), MiB(info.write_buffer_size)));
    d.evidence.push_back(Fmt("stall fraction %.3f", Round3(stall)));
    d.suggested_options = {"max_write_buffer_number", "write_buffer_size",
                           "max_background_flushes"};
    out.push_back(std::move(d));
  }

  // --- compaction_debt_growth: debt trending up toward the soft limit.
  {
    const AnomalyEvent* trend = nullptr;
    const bool trending =
        HasAnomaly(anomalies, Metric::kCompactionDebt, 1, &trend);
    const double soft =
        static_cast<double>(info.soft_pending_compaction_bytes_limit);
    const double frac =
        soft > 0 ? static_cast<double>(s.pending_compaction_bytes) / soft : 0;
    if (trending || frac > 0.5) {
      Diagnosis d;
      d.rule = "compaction_debt_growth";
      d.severity = std::min(1.0, std::max(frac, trending ? 0.45 : 0.0));
      d.symptom = "compaction debt rising";
      d.cause = "background compaction bandwidth below ingest rate";
      d.evidence.push_back(
          Fmt("pending compaction %.1f MiB (%.0f%% of soft limit)",
              MiB(s.pending_compaction_bytes), frac * 100));
      if (trend != nullptr) {
        d.evidence.push_back("detector: " + trend->ToString());
      }
      d.evidence.push_back(
          Fmt("max_background_jobs %d", info.max_background_jobs));
      d.suggested_options = {"max_background_jobs",
                             "level0_file_num_compaction_trigger",
                             "max_bytes_for_level_base"};
      out.push_back(std::move(d));
    }
  }

  // --- cache_thrash: block cache too small for the working set.
  {
    const uint64_t lookups = s.block_cache_hits + s.block_cache_misses;
    const double hit_ratio =
        lookups > 0 ? static_cast<double>(s.block_cache_hits) / lookups : 1.0;
    const AnomalyEvent* drop = nullptr;
    const bool dropped =
        HasAnomaly(anomalies, Metric::kCacheHitRatio, -1, &drop);
    const bool full =
        info.block_cache_size > 0 &&
        s.block_cache_usage >= info.block_cache_size -
                                   info.block_cache_size / 20;  // >= 95%
    if (lookups >= 16 && (dropped || (hit_ratio < 0.5 && full))) {
      Diagnosis d;
      d.rule = "cache_thrash";
      d.severity = std::min(1.0, 0.4 + (1.0 - hit_ratio) * 0.4);
      d.symptom = "block cache miss ratio high";
      d.cause = "working set exceeds block cache capacity";
      d.evidence.push_back(Fmt("interval hit ratio %.3f (%llu lookups)",
                               Round3(hit_ratio),
                               (unsigned long long)lookups));
      d.evidence.push_back(Fmt("cache usage %.1f of %.1f MiB",
                               MiB(s.block_cache_usage),
                               MiB(info.block_cache_size)));
      if (drop != nullptr) {
        d.evidence.push_back("detector: " + drop->ToString());
      }
      d.suggested_options = {"block_cache_size", "cache_index_and_filter_blocks",
                             "bloom_filter_bits_per_key"};
      out.push_back(std::move(d));
    }
  }

  // --- wal_sync_bound: foreground time dominated by WAL syncs.
  if (wal_share > 0.30) {
    Diagnosis d;
    d.rule = "wal_sync_bound";
    d.severity = std::min(1.0, wal_share);
    d.symptom = "write latency dominated by WAL syncs";
    d.cause = "every write paying a synchronous journal flush";
    d.evidence.push_back(
        Fmt("wal sync span share %.0f%% of engine time", wal_share * 100));
    d.evidence.push_back(Fmt("interval p99 write %.1f us", s.p99_write_us));
    d.suggested_options = {"wal_bytes_per_sync", "enable_pipelined_write",
                           "bytes_per_sync"};
    out.push_back(std::move(d));
  }

  // --- read_amplification: reads probing too many files per lookup.
  if (probe_share > 0.35 &&
      s.l0_files > info.level0_file_num_compaction_trigger) {
    Diagnosis d;
    d.rule = "read_amplification";
    d.severity = std::min(1.0, 0.4 + probe_share * 0.4);
    d.symptom = "read latency dominated by SST probes";
    d.cause = "many L0 files probed per lookup and no bloom filters to "
              "short-circuit misses";
    d.evidence.push_back(
        Fmt("sst probe span share %.0f%%", probe_share * 100));
    d.evidence.push_back(Fmt("l0 files %d (compaction trigger %d)",
                             s.l0_files,
                             info.level0_file_num_compaction_trigger));
    d.evidence.push_back(Fmt("bloom_filter_bits_per_key %d",
                             info.bloom_filter_bits_per_key));
    d.suggested_options = {"bloom_filter_bits_per_key",
                           "level0_file_num_compaction_trigger",
                           "block_cache_size"};
    out.push_back(std::move(d));
  }

  // --- workload_phase_shift: informational; the tuner should re-evaluate.
  {
    const AnomalyEvent* shift = nullptr;
    for (auto it = anomalies.rbegin(); it != anomalies.rend(); ++it) {
      if (it->phase_shift) {
        shift = &*it;
        break;
      }
    }
    if (shift != nullptr) {
      Diagnosis d;
      d.rule = "workload_phase_shift";
      d.severity = 0.35;
      d.symptom = "workload mix changed";
      d.cause = "operation mix shifted; current tuning may no longer fit";
      d.evidence.push_back("detector: " + shift->ToString());
      d.evidence.push_back(Fmt("interval mix: %llu writes, %llu gets, "
                               "%llu seeks",
                               (unsigned long long)s.writes,
                               (unsigned long long)s.gets,
                               (unsigned long long)s.seeks));
      d.suggested_options = {};
      out.push_back(std::move(d));
    }
  }

  // --- throughput_regression: fallback when throughput fell but no
  // structural rule above claimed it.
  {
    const AnomalyEvent* drop = nullptr;
    if (HasAnomaly(anomalies, Metric::kOpsPerSec, -1, &drop) && out.empty()) {
      Diagnosis d;
      d.rule = "throughput_regression";
      d.severity = 0.5;
      d.symptom = "throughput dropped";
      d.cause = "no structural cause identified from engine state";
      d.evidence.push_back("detector: " + drop->ToString());
      d.suggested_options = {};
      out.push_back(std::move(d));
    }
  }

  std::sort(out.begin(), out.end(), [](const Diagnosis& a, const Diagnosis& b) {
    if (a.severity != b.severity) return a.severity > b.severity;
    return a.rule < b.rule;
  });
  return out;
}

}  // namespace elmo::monitor
