// Offline health analysis: replay recorded telemetry — a JSONL info
// LOG (full `sampler_tick` events), an "elmo.timeseries" JSON document,
// or a BenchResult JSON with an embedded timeseries — through the same
// detector + diagnosis pipeline the live DB runs, producing a per-tick
// verdict timeline. Backs `elmo_dump health` and `elmo_top` on files.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "env/env.h"
#include "lsm/stats_sampler.h"
#include "monitor/health_monitor.h"
#include "util/status.h"

namespace elmo::monitor {

// One applied SetOptions() batch replayed from the LOG's
// `options_change` events: who applied it and each name's from -> to.
struct OptionsChangeEvent {
  struct Delta {
    std::string name;
    std::string from;
    std::string to;
  };
  uint64_t ts_us = 0;
  std::string source;  // "set_options", "online_tuner", "recovery", ...
  std::vector<Delta> deltas;

  std::string ToString() const;
};

struct HealthTimelineEntry {
  uint64_t ts_us = 0;
  std::vector<AnomalyEvent> events;  // confirmed at this tick
  HealthStatus status = HealthStatus::kOk;
  std::string top_rule;      // empty when no diagnosis active
  double top_severity = 0;
};

struct HealthTimeline {
  std::vector<HealthTimelineEntry> entries;  // one per tick
  HealthReport final_report;

  std::string ToText() const;
  std::string ToJson() const;
};

// Run a fresh HealthMonitor over a whole series. Timeline entries for
// quiet ticks with kOk status are still recorded (callers may filter).
HealthTimeline AnalyzeHealthSeries(
    const std::vector<lsm::IntervalSample>& samples,
    const MonitorConfig& config);

// Parse `sampler_tick` events out of a JSONL info LOG. When the LOG's
// "options" event is present, *info is refined from its ini text so the
// diagnosis rules use the recorded DB's actual triggers. When `changes`
// is non-null it collects the LOG's `options_change` events (dynamic
// SetOptions batches) in recording order.
Status SamplesFromInfoLog(const std::string& text,
                          std::vector<lsm::IntervalSample>* samples,
                          EngineInfo* info,
                          std::vector<OptionsChangeEvent>* changes = nullptr);

// Load telemetry samples from `path` (sniffed: JSONL LOG, timeseries
// JSON document, or BenchResult JSON with "timeseries"). Refines *info
// from the LOG's "options" event when present; Prometheus exposition is
// rejected (it carries no time series). `changes`, when non-null, is
// filled from JSONL LOG sources (the other formats carry no
// options_change events).
Status LoadTelemetry(Env* env, const std::string& path,
                     std::vector<lsm::IntervalSample>* samples,
                     EngineInfo* info,
                     std::vector<OptionsChangeEvent>* changes = nullptr);

// LoadTelemetry + AnalyzeHealthSeries. `config.engine` is the fallback
// when the source does not record options.
Status RunHealthOffline(Env* env, const std::string& path,
                        MonitorConfig config, HealthTimeline* out);

}  // namespace elmo::monitor
