// HealthMonitor: the stateful live pipeline — every IntervalSample
// flows through the changepoint detector, confirmed anomalies and the
// recent sample window feed the diagnosis rules, and the result is a
// HealthReport (status + anomalies + ranked diagnoses) that backs the
// "elmo.health" DB property, the bench report section, and elmo_top.
// Deterministic: same sample stream in, byte-identical report out.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "lsm/stats_sampler.h"
#include "monitor/detector.h"
#include "monitor/diagnosis.h"
#include "util/status.h"

namespace elmo::monitor {

enum class HealthStatus : int {
  kOk = 0,
  kWarn = 1,
  kCritical = 2,
};

const char* HealthStatusName(HealthStatus s);

struct HealthReport {
  HealthStatus status = HealthStatus::kOk;
  uint64_t ts_us = 0;
  uint64_t intervals_observed = 0;
  std::vector<AnomalyEvent> anomalies;  // most recent last
  std::vector<Diagnosis> diagnoses;     // severity-ranked, top first

  // Multi-line human-readable rendering (bench report / prompt / CLI).
  std::string ToText() const;
  std::string ToJson() const;
  static Status FromJson(const std::string& text, HealthReport* out);
};

struct MonitorConfig {
  DetectorConfig detector;
  EngineInfo engine;
  // Samples the diagnosis rules may look back over.
  size_t diagnosis_window = 8;
  // Anomalies retained in the report (oldest dropped).
  size_t anomaly_history = 32;
  // An anomaly this many ticks old no longer bumps status to kWarn.
  uint64_t warn_horizon_ticks = 8;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(const MonitorConfig& config);

  // Feed one sample; returns the anomalies confirmed at this tick.
  std::vector<AnomalyEvent> Observe(const lsm::IntervalSample& s);

  // Report as of the last observed sample.
  HealthReport Report() const;

  const MonitorConfig& config() const { return config_; }

  // Re-point the diagnosis rules at a changed engine configuration
  // (DB::SetOptions retuned thresholds mid-run). Detector state and the
  // anomaly history are preserved — only future diagnoses see the new
  // triggers/capacities.
  void SetEngineInfo(const EngineInfo& engine);

 private:
  MonitorConfig config_;
  ChangepointDetector detector_;
  std::deque<lsm::IntervalSample> recent_;
  struct TimedAnomaly {
    AnomalyEvent event;
    uint64_t tick = 0;  // detector tick index when confirmed
  };
  std::deque<TimedAnomaly> anomalies_;
  uint64_t last_ts_us_ = 0;
};

}  // namespace elmo::monitor
