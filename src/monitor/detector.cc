#include "monitor/detector.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace elmo::monitor {

namespace {

// Round to three decimals so serialized events are byte-deterministic
// across libm implementations.
double Round3(double v) {
  const double shifted = v * 1000.0 + (v >= 0 ? 0.5 : -0.5);
  return static_cast<double>(static_cast<int64_t>(shifted)) / 1000.0;
}

bool IsShareMetric(Metric m) {
  switch (m) {
    case Metric::kStallFraction:
    case Metric::kCacheHitRatio:
    case Metric::kWalSyncShare:
    case Metric::kWriteShare:
    case Metric::kScanShare:
      return true;
    default:
      return false;
  }
}

bool IsPhaseMetric(Metric m) {
  return m == Metric::kWriteShare || m == Metric::kScanShare;
}

struct WindowStats {
  double mean = 0;
  double stddev = 0;
};

WindowStats ComputeStats(const std::deque<double>& w) {
  WindowStats st;
  if (w.empty()) return st;
  double sum = 0;
  for (double v : w) sum += v;
  st.mean = sum / static_cast<double>(w.size());
  double var = 0;
  for (double v : w) var += (v - st.mean) * (v - st.mean);
  var /= static_cast<double>(w.size());
  st.stddev = std::sqrt(var);
  return st;
}

}  // namespace

const char* MetricName(Metric m) {
  switch (m) {
    case Metric::kOpsPerSec: return "ops_per_sec";
    case Metric::kStallFraction: return "stall_fraction";
    case Metric::kCompactionDebt: return "compaction_debt";
    case Metric::kCacheHitRatio: return "cache_hit_ratio";
    case Metric::kWalSyncShare: return "wal_sync_share";
    case Metric::kWriteShare: return "write_share";
    case Metric::kScanShare: return "scan_share";
    case Metric::kMetricMax: break;
  }
  return "unknown";
}

namespace {

Metric MetricFromName(const std::string& name) {
  for (int i = 0; i < static_cast<int>(Metric::kMetricMax); i++) {
    if (name == MetricName(static_cast<Metric>(i))) {
      return static_cast<Metric>(i);
    }
  }
  return Metric::kOpsPerSec;
}

}  // namespace

std::string AnomalyEvent::ToString() const {
  char buf[256];
  snprintf(buf, sizeof(buf), "[%llu us] %s %s %s: %.3f -> %.3f (z=%.1f)%s",
           (unsigned long long)ts_us, MetricName(metric),
           kind == AnomalyKind::kTrend ? "trend" : "level-shift",
           direction > 0 ? "up" : "down", Round3(before), Round3(after),
           Round3(zscore), phase_shift ? " [phase shift]" : "");
  return buf;
}

json::Object AnomalyEvent::ToJson() const {
  json::Object o;
  o["ts_us"] = static_cast<int64_t>(ts_us);
  o["metric"] = MetricName(metric);
  o["kind"] = kind == AnomalyKind::kTrend ? "trend" : "level_shift";
  o["direction"] = direction;
  o["phase_shift"] = phase_shift;
  o["before"] = Round3(before);
  o["after"] = Round3(after);
  o["zscore"] = Round3(zscore);
  return o;
}

AnomalyEvent AnomalyEventFromJson(const json::Value& obj) {
  AnomalyEvent e;
  const json::Value* v;
  if ((v = obj.Find("ts_us")) != nullptr && v->is_number()) {
    e.ts_us = static_cast<uint64_t>(v->as_int());
  }
  if ((v = obj.Find("metric")) != nullptr && v->is_string()) {
    e.metric = MetricFromName(v->as_string());
  }
  if ((v = obj.Find("kind")) != nullptr && v->is_string()) {
    e.kind = v->as_string() == "trend" ? AnomalyKind::kTrend
                                       : AnomalyKind::kLevelShift;
  }
  if ((v = obj.Find("direction")) != nullptr && v->is_number()) {
    e.direction = static_cast<int>(v->as_int());
  }
  if ((v = obj.Find("phase_shift")) != nullptr && v->is_bool()) {
    e.phase_shift = v->as_bool();
  }
  if ((v = obj.Find("before")) != nullptr && v->is_number()) {
    e.before = v->as_double();
  }
  if ((v = obj.Find("after")) != nullptr && v->is_number()) {
    e.after = v->as_double();
  }
  if ((v = obj.Find("zscore")) != nullptr && v->is_number()) {
    e.zscore = v->as_double();
  }
  return e;
}

ChangepointDetector::ChangepointDetector(const DetectorConfig& config)
    : config_(config) {}

bool ChangepointDetector::ExtractMetric(const lsm::IntervalSample& s,
                                        Metric m, double* value) {
  const double interval = static_cast<double>(s.interval_us);
  const uint64_t fg_ops = s.ops + s.seeks;
  switch (m) {
    case Metric::kOpsPerSec:
      if (interval <= 0) return false;
      *value = static_cast<double>(fg_ops) * 1e6 / interval;
      return true;
    case Metric::kStallFraction:
      *value = s.stall_fraction;
      return true;
    case Metric::kCompactionDebt:
      *value = static_cast<double>(s.pending_compaction_bytes);
      return true;
    case Metric::kCacheHitRatio: {
      const uint64_t lookups = s.block_cache_hits + s.block_cache_misses;
      if (lookups == 0) return false;
      *value = static_cast<double>(s.block_cache_hits) /
               static_cast<double>(lookups);
      return true;
    }
    case Metric::kWalSyncShare:
      if (interval <= 0) return false;
      *value = std::min(
          1.0, static_cast<double>(s.span_wal_sync_us) / interval);
      return true;
    case Metric::kWriteShare:
      if (fg_ops == 0) return false;
      *value = static_cast<double>(s.writes) / static_cast<double>(fg_ops);
      return true;
    case Metric::kScanShare:
      if (fg_ops == 0) return false;
      *value = static_cast<double>(s.seeks) / static_cast<double>(fg_ops);
      return true;
    case Metric::kMetricMax:
      break;
  }
  return false;
}

std::vector<AnomalyEvent> ChangepointDetector::Observe(
    const lsm::IntervalSample& s) {
  std::vector<AnomalyEvent> out;
  ticks_++;
  for (int i = 0; i < static_cast<int>(Metric::kMetricMax); i++) {
    const Metric m = static_cast<Metric>(i);
    double value = 0;
    if (!ExtractMetric(s, m, &value)) continue;
    ObserveMetric(m, value, s.ts_us, &out);
    if (m == Metric::kCompactionDebt) {
      ObserveTrend(m, value, s.ts_us, &out);
    }
  }
  return out;
}

void ChangepointDetector::ObserveMetric(Metric m, double value,
                                        uint64_t ts_us,
                                        std::vector<AnomalyEvent>* out) {
  MetricState& st = state_[static_cast<int>(m)];

  if (st.cooldown_left > 0) {
    // Re-learning: accept the value into the window unconditionally.
    st.cooldown_left--;
    st.window.push_back(value);
    while (static_cast<int>(st.window.size()) > config_.window) {
      st.window.pop_front();
    }
    return;
  }

  if (static_cast<int>(st.window.size()) < config_.min_history) {
    st.window.push_back(value);
    return;
  }

  const WindowStats ws = ComputeStats(st.window);
  // Deviation = clears BOTH the z-score gate and the practical gate
  // (max of the two thresholds).
  const double min_delta =
      IsShareMetric(m)
          ? config_.share_abs_threshold
          : config_.rel_threshold *
                std::max(std::fabs(ws.mean),
                         m == Metric::kOpsPerSec ? config_.ops_per_sec_floor
                         : m == Metric::kCompactionDebt ? config_.debt_floor
                                                        : 1.0);
  const double threshold =
      std::max(config_.z_threshold * ws.stddev, min_delta);
  const double delta = value - ws.mean;
  const int dir = delta > 0 ? 1 : -1;

  if (std::fabs(delta) <= threshold) {
    // Back to normal: flush any unconfirmed deviation into the window.
    for (double p : st.pending) st.window.push_back(p);
    st.pending.clear();
    st.pending_direction = 0;
    st.window.push_back(value);
    while (static_cast<int>(st.window.size()) > config_.window) {
      st.window.pop_front();
    }
    return;
  }

  if (st.pending_direction != 0 && st.pending_direction != dir) {
    st.pending.clear();
  }
  st.pending_direction = dir;
  st.pending.push_back(value);

  if (static_cast<int>(st.pending.size()) < config_.confirm) return;

  AnomalyEvent e;
  e.ts_us = ts_us;
  e.metric = m;
  e.kind = AnomalyKind::kLevelShift;
  e.direction = dir;
  e.phase_shift = IsPhaseMetric(m);
  e.before = ws.mean;
  e.after = value;
  e.zscore = ws.stddev > 0 ? std::fabs(delta) / ws.stddev : 0;
  out->push_back(e);

  // Reseed the reference window from the confirmed post-change values
  // and go quiet for `cooldown` ticks.
  st.window.assign(st.pending.begin(), st.pending.end());
  st.pending.clear();
  st.pending_direction = 0;
  st.cooldown_left = config_.cooldown;
}

void ChangepointDetector::ObserveTrend(Metric m, double value,
                                       uint64_t ts_us,
                                       std::vector<AnomalyEvent>* out) {
  MetricState& st = state_[static_cast<int>(m)];
  if (!st.has_last) {
    st.has_last = true;
    st.last_value = value;
    st.trend_start = value;
    return;
  }
  if (value > st.last_value) {
    if (st.rises == 0) st.trend_start = st.last_value;
    st.rises++;
  } else {
    st.rises = 0;
  }
  st.last_value = value;
  if (st.rises < config_.trend_confirm) return;
  const double base = std::max(st.trend_start, config_.debt_floor);
  if (value < base * config_.trend_min_ratio) return;

  AnomalyEvent e;
  e.ts_us = ts_us;
  e.metric = m;
  e.kind = AnomalyKind::kTrend;
  e.direction = 1;
  e.phase_shift = false;
  e.before = st.trend_start;
  e.after = value;
  e.zscore = 0;
  out->push_back(e);
  st.rises = 0;
  st.trend_start = value;
}

std::vector<AnomalyEvent> DetectSeries(
    const std::vector<lsm::IntervalSample>& samples,
    const DetectorConfig& config) {
  ChangepointDetector det(config);
  std::vector<AnomalyEvent> all;
  for (const lsm::IntervalSample& s : samples) {
    std::vector<AnomalyEvent> e = det.Observe(s);
    all.insert(all.end(), e.begin(), e.end());
  }
  return all;
}

}  // namespace elmo::monitor
