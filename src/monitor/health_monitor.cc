#include "monitor/health_monitor.h"

#include <algorithm>

namespace elmo::monitor {

const char* HealthStatusName(HealthStatus s) {
  switch (s) {
    case HealthStatus::kOk: return "ok";
    case HealthStatus::kWarn: return "warn";
    case HealthStatus::kCritical: return "critical";
  }
  return "unknown";
}

namespace {

HealthStatus StatusFromName(const std::string& name) {
  if (name == "critical") return HealthStatus::kCritical;
  if (name == "warn") return HealthStatus::kWarn;
  return HealthStatus::kOk;
}

}  // namespace

std::string HealthReport::ToText() const {
  std::string out = "health: ";
  out += HealthStatusName(status);
  out += " (" + std::to_string(intervals_observed) + " intervals)\n";
  if (anomalies.empty()) {
    out += "anomalies: none\n";
  } else {
    out += "anomalies (" + std::to_string(anomalies.size()) + "):\n";
    for (const AnomalyEvent& e : anomalies) {
      out += "  " + e.ToString() + "\n";
    }
  }
  if (diagnoses.empty()) {
    out += "diagnoses: none\n";
  } else {
    out += "diagnoses (ranked):\n";
    for (const Diagnosis& d : diagnoses) {
      out += "  " + d.ToString() + "\n";
    }
  }
  return out;
}

std::string HealthReport::ToJson() const {
  json::Object o;
  o["status"] = HealthStatusName(status);
  o["ts_us"] = static_cast<int64_t>(ts_us);
  o["intervals_observed"] = static_cast<int64_t>(intervals_observed);
  json::Array an;
  for (const AnomalyEvent& e : anomalies) an.emplace_back(e.ToJson());
  o["anomalies"] = std::move(an);
  json::Array di;
  for (const Diagnosis& d : diagnoses) di.emplace_back(d.ToJson());
  o["diagnoses"] = std::move(di);
  return json::Value(std::move(o)).Dump();
}

Status HealthReport::FromJson(const std::string& text, HealthReport* out) {
  json::Value doc;
  Status s = json::Parse(text, &doc);
  if (!s.ok()) return s;
  if (!doc.is_object()) return Status::Corruption("health: not an object");
  *out = HealthReport();
  const json::Value* v;
  if ((v = doc.Find("status")) != nullptr && v->is_string()) {
    out->status = StatusFromName(v->as_string());
  }
  if ((v = doc.Find("ts_us")) != nullptr && v->is_number()) {
    out->ts_us = static_cast<uint64_t>(v->as_int());
  }
  if ((v = doc.Find("intervals_observed")) != nullptr && v->is_number()) {
    out->intervals_observed = static_cast<uint64_t>(v->as_int());
  }
  if ((v = doc.Find("anomalies")) != nullptr && v->is_array()) {
    for (const json::Value& e : v->as_array()) {
      if (e.is_object()) out->anomalies.push_back(AnomalyEventFromJson(e));
    }
  }
  if ((v = doc.Find("diagnoses")) != nullptr && v->is_array()) {
    for (const json::Value& d : v->as_array()) {
      if (d.is_object()) out->diagnoses.push_back(DiagnosisFromJson(d));
    }
  }
  return Status::OK();
}

HealthMonitor::HealthMonitor(const MonitorConfig& config)
    : config_(config), detector_(config.detector) {}

void HealthMonitor::SetEngineInfo(const EngineInfo& engine) {
  config_.engine = engine;
}

std::vector<AnomalyEvent> HealthMonitor::Observe(
    const lsm::IntervalSample& s) {
  std::vector<AnomalyEvent> events = detector_.Observe(s);
  last_ts_us_ = s.ts_us;
  recent_.push_back(s);
  while (recent_.size() > config_.diagnosis_window) recent_.pop_front();
  for (const AnomalyEvent& e : events) {
    anomalies_.push_back({e, detector_.ticks_observed()});
  }
  while (anomalies_.size() > config_.anomaly_history) anomalies_.pop_front();
  return events;
}

HealthReport HealthMonitor::Report() const {
  HealthReport r;
  r.ts_us = last_ts_us_;
  r.intervals_observed = detector_.ticks_observed();
  // Anomalies confirmed within the diagnosis lookback drive the rules;
  // the full retained history goes in the report.
  std::vector<AnomalyEvent> window_anomalies;
  const uint64_t now_tick = detector_.ticks_observed();
  for (const TimedAnomaly& t : anomalies_) {
    r.anomalies.push_back(t.event);
    if (now_tick - t.tick < config_.diagnosis_window) {
      window_anomalies.push_back(t.event);
    }
  }
  r.diagnoses =
      Diagnose(std::vector<lsm::IntervalSample>(recent_.begin(),
                                                recent_.end()),
               window_anomalies, config_.engine);

  double top_severity = 0;
  for (const Diagnosis& d : r.diagnoses) {
    top_severity = std::max(top_severity, d.severity);
  }
  bool recent_anomaly = false;
  for (const TimedAnomaly& t : anomalies_) {
    if (now_tick - t.tick < config_.warn_horizon_ticks) {
      recent_anomaly = true;
      break;
    }
  }
  if (top_severity >= 0.75) {
    r.status = HealthStatus::kCritical;
  } else if (top_severity >= 0.4 || recent_anomaly) {
    r.status = HealthStatus::kWarn;
  } else {
    r.status = HealthStatus::kOk;
  }
  return r;
}

}  // namespace elmo::monitor
