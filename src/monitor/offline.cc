#include "monitor/offline.h"

#include <cstdio>

#include "lsm/options_schema.h"
#include "util/ini.h"
#include "util/json.h"

namespace elmo::monitor {

std::string OptionsChangeEvent::ToString() const {
  char buf[64];
  snprintf(buf, sizeof(buf), "[%llu us] %s:", (unsigned long long)ts_us,
           source.c_str());
  std::string out = buf;
  for (const Delta& d : deltas) {
    out += " " + d.name + " " + d.from + " -> " + d.to;
  }
  return out;
}

std::string HealthTimeline::ToText() const {
  std::string out;
  char buf[160];
  snprintf(buf, sizeof(buf), "health timeline: %zu ticks\n", entries.size());
  out += buf;
  for (const HealthTimelineEntry& e : entries) {
    // Quiet ok ticks are elided from the text rendering; the JSON keeps
    // every tick.
    if (e.events.empty() && e.status == HealthStatus::kOk) continue;
    snprintf(buf, sizeof(buf), "[%llu us] status=%s",
             (unsigned long long)e.ts_us, HealthStatusName(e.status));
    out += buf;
    if (!e.top_rule.empty()) {
      snprintf(buf, sizeof(buf), " top=%s (%.2f)", e.top_rule.c_str(),
               e.top_severity);
      out += buf;
    }
    out += "\n";
    for (const AnomalyEvent& ev : e.events) {
      out += "  " + ev.ToString() + "\n";
    }
  }
  out += "\nfinal report:\n";
  out += final_report.ToText();
  return out;
}

std::string HealthTimeline::ToJson() const {
  json::Object doc;
  json::Array arr;
  arr.reserve(entries.size());
  for (const HealthTimelineEntry& e : entries) {
    json::Object o;
    o["ts_us"] = static_cast<int64_t>(e.ts_us);
    o["status"] = HealthStatusName(e.status);
    if (!e.top_rule.empty()) {
      o["top_rule"] = e.top_rule;
      o["top_severity"] = e.top_severity;
    }
    json::Array evs;
    for (const AnomalyEvent& ev : e.events) evs.emplace_back(ev.ToJson());
    o["events"] = std::move(evs);
    arr.emplace_back(std::move(o));
  }
  doc["ticks"] = std::move(arr);
  json::Value final_doc;
  // final_report.ToJson() is a serialized document; re-parse so the
  // timeline JSON embeds it as a sub-object, not an escaped string.
  if (json::Parse(final_report.ToJson(), &final_doc).ok()) {
    doc["final_report"] = std::move(final_doc);
  }
  return json::Value(std::move(doc)).Dump(2);
}

HealthTimeline AnalyzeHealthSeries(
    const std::vector<lsm::IntervalSample>& samples,
    const MonitorConfig& config) {
  HealthTimeline tl;
  HealthMonitor mon(config);
  tl.entries.reserve(samples.size());
  for (const lsm::IntervalSample& s : samples) {
    HealthTimelineEntry e;
    e.ts_us = s.ts_us;
    e.events = mon.Observe(s);
    HealthReport r = mon.Report();
    e.status = r.status;
    if (!r.diagnoses.empty()) {
      e.top_rule = r.diagnoses.front().rule;
      e.top_severity = r.diagnoses.front().severity;
    }
    tl.entries.push_back(std::move(e));
  }
  tl.final_report = mon.Report();
  return tl;
}

Status SamplesFromInfoLog(const std::string& text,
                          std::vector<lsm::IntervalSample>* samples,
                          EngineInfo* info,
                          std::vector<OptionsChangeEvent>* changes) {
  samples->clear();
  if (changes != nullptr) changes->clear();
  size_t pos = 0;
  size_t parsed_lines = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    json::Value obj;
    if (!json::Parse(line, &obj).ok() || !obj.is_object()) continue;
    parsed_lines++;
    const json::Value* event = obj.Find("event");
    if (event == nullptr || !event->is_string()) continue;
    if (event->as_string() == "sampler_tick") {
      // The sample's own ts was stripped before logging; the LOG line's
      // ts_us (same engine clock, same tick) stands in for it.
      samples->push_back(lsm::SampleFromJsonValue(obj));
    } else if (event->as_string() == "options" && info != nullptr) {
      const json::Value* ini = obj.Find("ini");
      if (ini != nullptr && ini->is_string()) {
        IniDoc doc;
        if (IniDoc::Parse(ini->as_string(), &doc).ok()) {
          lsm::Options opts;
          if (lsm::OptionsSchema::Instance().FromIni(doc, &opts).ok()) {
            *info = EngineInfo::FromOptions(opts);
          }
        }
      }
    } else if (event->as_string() == "options_change" && changes != nullptr) {
      OptionsChangeEvent ch;
      const json::Value* ts = obj.Find("ts_us");
      if (ts != nullptr && ts->is_number()) {
        ch.ts_us = static_cast<uint64_t>(ts->as_int());
      }
      const json::Value* src = obj.Find("source");
      if (src != nullptr && src->is_string()) ch.source = src->as_string();
      const json::Value* deltas = obj.Find("deltas");
      if (deltas != nullptr && deltas->is_array()) {
        for (const json::Value& dv : deltas->as_array()) {
          if (!dv.is_object()) continue;
          OptionsChangeEvent::Delta d;
          const json::Value* name = dv.Find("name");
          const json::Value* from = dv.Find("from");
          const json::Value* to = dv.Find("to");
          if (name != nullptr && name->is_string()) d.name = name->as_string();
          if (from != nullptr && from->is_string()) d.from = from->as_string();
          if (to != nullptr && to->is_string()) d.to = to->as_string();
          ch.deltas.push_back(std::move(d));
        }
      }
      changes->push_back(std::move(ch));
    }
  }
  if (parsed_lines == 0) {
    return Status::Corruption("info LOG: no parseable JSONL lines");
  }
  return Status::OK();
}

namespace {

Status SamplesFromJsonDoc(const std::string& text,
                          std::vector<lsm::IntervalSample>* samples) {
  json::Value doc;
  Status s = json::Parse(text, &doc);
  if (!s.ok()) return s;
  if (!doc.is_object()) return Status::Corruption("not a JSON object");
  if (doc.Find("samples") != nullptr) {
    return lsm::TimeSeriesFromJson(text, samples);
  }
  // BenchResult JSON: timeseries embedded as a sub-document (or, in
  // older reports, an escaped string).
  const json::Value* ts = doc.Find("timeseries");
  if (ts == nullptr) {
    return Status::Corruption("JSON has neither samples nor timeseries");
  }
  const std::string inner = ts->is_string() ? ts->as_string() : ts->Dump();
  return lsm::TimeSeriesFromJson(inner, samples);
}

}  // namespace

Status LoadTelemetry(Env* env, const std::string& path,
                     std::vector<lsm::IntervalSample>* samples,
                     EngineInfo* info,
                     std::vector<OptionsChangeEvent>* changes) {
  samples->clear();
  if (changes != nullptr) changes->clear();
  std::string text;
  Status s = env->ReadFileToString(path, &text);
  if (!s.ok()) return s;
  size_t first = text.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) {
    return Status::Corruption(path, "empty telemetry file");
  }
  if (text[first] == '#' || text.compare(first, 5, "elmo_") == 0) {
    return Status::InvalidArgument(
        path,
        "prometheus exposition carries no time series; point at a JSONL "
        "LOG or timeseries JSON");
  }
  if (text[first] == '{' && text.find('\n', first) > text.find('}', first)) {
    // Heuristic: a JSONL LOG is one object per line; a document spans
    // lines (or is a one-line object with no trailing lines). Try the
    // document parse first and fall back to JSONL.
    if (SamplesFromJsonDoc(text, samples).ok()) return Status::OK();
  }
  s = SamplesFromInfoLog(text, samples, info, changes);
  if (!s.ok()) {
    // Last resort: a (possibly pretty-printed) JSON document.
    Status doc_s = SamplesFromJsonDoc(text, samples);
    if (!doc_s.ok()) return s;
  }
  if (samples->empty()) {
    return Status::InvalidArgument(path, "no sampler ticks found");
  }
  return Status::OK();
}

Status RunHealthOffline(Env* env, const std::string& path,
                        MonitorConfig config, HealthTimeline* out) {
  std::vector<lsm::IntervalSample> samples;
  Status s = LoadTelemetry(env, path, &samples, &config.engine);
  if (!s.ok()) return s;
  *out = AnalyzeHealthSeries(samples, config);
  return Status::OK();
}

}  // namespace elmo::monitor
