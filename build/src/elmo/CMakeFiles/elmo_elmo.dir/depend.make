# Empty dependencies file for elmo_elmo.
# This may be replaced when dependencies are built.
