file(REMOVE_RECURSE
  "libelmo_elmo.a"
)
