
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/elmo/active_flagger.cc" "src/elmo/CMakeFiles/elmo_elmo.dir/active_flagger.cc.o" "gcc" "src/elmo/CMakeFiles/elmo_elmo.dir/active_flagger.cc.o.d"
  "/root/repo/src/elmo/history_export.cc" "src/elmo/CMakeFiles/elmo_elmo.dir/history_export.cc.o" "gcc" "src/elmo/CMakeFiles/elmo_elmo.dir/history_export.cc.o.d"
  "/root/repo/src/elmo/option_evaluator.cc" "src/elmo/CMakeFiles/elmo_elmo.dir/option_evaluator.cc.o" "gcc" "src/elmo/CMakeFiles/elmo_elmo.dir/option_evaluator.cc.o.d"
  "/root/repo/src/elmo/prompt_generator.cc" "src/elmo/CMakeFiles/elmo_elmo.dir/prompt_generator.cc.o" "gcc" "src/elmo/CMakeFiles/elmo_elmo.dir/prompt_generator.cc.o.d"
  "/root/repo/src/elmo/safeguard.cc" "src/elmo/CMakeFiles/elmo_elmo.dir/safeguard.cc.o" "gcc" "src/elmo/CMakeFiles/elmo_elmo.dir/safeguard.cc.o.d"
  "/root/repo/src/elmo/tuning_session.cc" "src/elmo/CMakeFiles/elmo_elmo.dir/tuning_session.cc.o" "gcc" "src/elmo/CMakeFiles/elmo_elmo.dir/tuning_session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bench_kit/CMakeFiles/elmo_bench.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/elmo_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/sysinfo/CMakeFiles/elmo_sysinfo.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/elmo_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/elmo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/elmo_table.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/elmo_env.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
