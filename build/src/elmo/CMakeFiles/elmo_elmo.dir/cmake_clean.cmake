file(REMOVE_RECURSE
  "CMakeFiles/elmo_elmo.dir/active_flagger.cc.o"
  "CMakeFiles/elmo_elmo.dir/active_flagger.cc.o.d"
  "CMakeFiles/elmo_elmo.dir/history_export.cc.o"
  "CMakeFiles/elmo_elmo.dir/history_export.cc.o.d"
  "CMakeFiles/elmo_elmo.dir/option_evaluator.cc.o"
  "CMakeFiles/elmo_elmo.dir/option_evaluator.cc.o.d"
  "CMakeFiles/elmo_elmo.dir/prompt_generator.cc.o"
  "CMakeFiles/elmo_elmo.dir/prompt_generator.cc.o.d"
  "CMakeFiles/elmo_elmo.dir/safeguard.cc.o"
  "CMakeFiles/elmo_elmo.dir/safeguard.cc.o.d"
  "CMakeFiles/elmo_elmo.dir/tuning_session.cc.o"
  "CMakeFiles/elmo_elmo.dir/tuning_session.cc.o.d"
  "libelmo_elmo.a"
  "libelmo_elmo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_elmo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
