# Empty dependencies file for elmo_bench.
# This may be replaced when dependencies are built.
