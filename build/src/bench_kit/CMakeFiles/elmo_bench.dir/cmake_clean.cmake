file(REMOVE_RECURSE
  "CMakeFiles/elmo_bench.dir/bench_runner.cc.o"
  "CMakeFiles/elmo_bench.dir/bench_runner.cc.o.d"
  "CMakeFiles/elmo_bench.dir/generators.cc.o"
  "CMakeFiles/elmo_bench.dir/generators.cc.o.d"
  "CMakeFiles/elmo_bench.dir/report.cc.o"
  "CMakeFiles/elmo_bench.dir/report.cc.o.d"
  "CMakeFiles/elmo_bench.dir/workload.cc.o"
  "CMakeFiles/elmo_bench.dir/workload.cc.o.d"
  "libelmo_bench.a"
  "libelmo_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
