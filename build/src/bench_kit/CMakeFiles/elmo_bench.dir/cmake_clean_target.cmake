file(REMOVE_RECURSE
  "libelmo_bench.a"
)
