
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench_kit/bench_runner.cc" "src/bench_kit/CMakeFiles/elmo_bench.dir/bench_runner.cc.o" "gcc" "src/bench_kit/CMakeFiles/elmo_bench.dir/bench_runner.cc.o.d"
  "/root/repo/src/bench_kit/generators.cc" "src/bench_kit/CMakeFiles/elmo_bench.dir/generators.cc.o" "gcc" "src/bench_kit/CMakeFiles/elmo_bench.dir/generators.cc.o.d"
  "/root/repo/src/bench_kit/report.cc" "src/bench_kit/CMakeFiles/elmo_bench.dir/report.cc.o" "gcc" "src/bench_kit/CMakeFiles/elmo_bench.dir/report.cc.o.d"
  "/root/repo/src/bench_kit/workload.cc" "src/bench_kit/CMakeFiles/elmo_bench.dir/workload.cc.o" "gcc" "src/bench_kit/CMakeFiles/elmo_bench.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lsm/CMakeFiles/elmo_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/elmo_env.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/elmo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/elmo_table.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
