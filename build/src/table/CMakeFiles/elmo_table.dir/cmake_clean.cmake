file(REMOVE_RECURSE
  "CMakeFiles/elmo_table.dir/block.cc.o"
  "CMakeFiles/elmo_table.dir/block.cc.o.d"
  "CMakeFiles/elmo_table.dir/block_builder.cc.o"
  "CMakeFiles/elmo_table.dir/block_builder.cc.o.d"
  "CMakeFiles/elmo_table.dir/bloom.cc.o"
  "CMakeFiles/elmo_table.dir/bloom.cc.o.d"
  "CMakeFiles/elmo_table.dir/cache.cc.o"
  "CMakeFiles/elmo_table.dir/cache.cc.o.d"
  "CMakeFiles/elmo_table.dir/comparator.cc.o"
  "CMakeFiles/elmo_table.dir/comparator.cc.o.d"
  "CMakeFiles/elmo_table.dir/format.cc.o"
  "CMakeFiles/elmo_table.dir/format.cc.o.d"
  "CMakeFiles/elmo_table.dir/iterator.cc.o"
  "CMakeFiles/elmo_table.dir/iterator.cc.o.d"
  "CMakeFiles/elmo_table.dir/table.cc.o"
  "CMakeFiles/elmo_table.dir/table.cc.o.d"
  "CMakeFiles/elmo_table.dir/table_builder.cc.o"
  "CMakeFiles/elmo_table.dir/table_builder.cc.o.d"
  "libelmo_table.a"
  "libelmo_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
