# Empty compiler generated dependencies file for elmo_table.
# This may be replaced when dependencies are built.
