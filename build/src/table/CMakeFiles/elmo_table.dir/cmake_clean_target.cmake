file(REMOVE_RECURSE
  "libelmo_table.a"
)
