file(REMOVE_RECURSE
  "libelmo_lsm.a"
)
