# Empty compiler generated dependencies file for elmo_lsm.
# This may be replaced when dependencies are built.
