# Empty dependencies file for elmo_sysinfo.
# This may be replaced when dependencies are built.
