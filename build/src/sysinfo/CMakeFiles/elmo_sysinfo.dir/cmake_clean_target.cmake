file(REMOVE_RECURSE
  "libelmo_sysinfo.a"
)
