
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sysinfo/system_probe.cc" "src/sysinfo/CMakeFiles/elmo_sysinfo.dir/system_probe.cc.o" "gcc" "src/sysinfo/CMakeFiles/elmo_sysinfo.dir/system_probe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/env/CMakeFiles/elmo_env.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/elmo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
