file(REMOVE_RECURSE
  "CMakeFiles/elmo_sysinfo.dir/system_probe.cc.o"
  "CMakeFiles/elmo_sysinfo.dir/system_probe.cc.o.d"
  "libelmo_sysinfo.a"
  "libelmo_sysinfo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_sysinfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
