# Empty dependencies file for elmo_util.
# This may be replaced when dependencies are built.
