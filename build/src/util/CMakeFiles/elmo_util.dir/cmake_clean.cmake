file(REMOVE_RECURSE
  "CMakeFiles/elmo_util.dir/arena.cc.o"
  "CMakeFiles/elmo_util.dir/arena.cc.o.d"
  "CMakeFiles/elmo_util.dir/coding.cc.o"
  "CMakeFiles/elmo_util.dir/coding.cc.o.d"
  "CMakeFiles/elmo_util.dir/crc32c.cc.o"
  "CMakeFiles/elmo_util.dir/crc32c.cc.o.d"
  "CMakeFiles/elmo_util.dir/histogram.cc.o"
  "CMakeFiles/elmo_util.dir/histogram.cc.o.d"
  "CMakeFiles/elmo_util.dir/ini.cc.o"
  "CMakeFiles/elmo_util.dir/ini.cc.o.d"
  "CMakeFiles/elmo_util.dir/json.cc.o"
  "CMakeFiles/elmo_util.dir/json.cc.o.d"
  "CMakeFiles/elmo_util.dir/logging.cc.o"
  "CMakeFiles/elmo_util.dir/logging.cc.o.d"
  "CMakeFiles/elmo_util.dir/string_util.cc.o"
  "CMakeFiles/elmo_util.dir/string_util.cc.o.d"
  "CMakeFiles/elmo_util.dir/thread_pool.cc.o"
  "CMakeFiles/elmo_util.dir/thread_pool.cc.o.d"
  "libelmo_util.a"
  "libelmo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
