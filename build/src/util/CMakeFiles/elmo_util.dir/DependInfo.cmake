
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/arena.cc" "src/util/CMakeFiles/elmo_util.dir/arena.cc.o" "gcc" "src/util/CMakeFiles/elmo_util.dir/arena.cc.o.d"
  "/root/repo/src/util/coding.cc" "src/util/CMakeFiles/elmo_util.dir/coding.cc.o" "gcc" "src/util/CMakeFiles/elmo_util.dir/coding.cc.o.d"
  "/root/repo/src/util/crc32c.cc" "src/util/CMakeFiles/elmo_util.dir/crc32c.cc.o" "gcc" "src/util/CMakeFiles/elmo_util.dir/crc32c.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/util/CMakeFiles/elmo_util.dir/histogram.cc.o" "gcc" "src/util/CMakeFiles/elmo_util.dir/histogram.cc.o.d"
  "/root/repo/src/util/ini.cc" "src/util/CMakeFiles/elmo_util.dir/ini.cc.o" "gcc" "src/util/CMakeFiles/elmo_util.dir/ini.cc.o.d"
  "/root/repo/src/util/json.cc" "src/util/CMakeFiles/elmo_util.dir/json.cc.o" "gcc" "src/util/CMakeFiles/elmo_util.dir/json.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/util/CMakeFiles/elmo_util.dir/logging.cc.o" "gcc" "src/util/CMakeFiles/elmo_util.dir/logging.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/util/CMakeFiles/elmo_util.dir/string_util.cc.o" "gcc" "src/util/CMakeFiles/elmo_util.dir/string_util.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/util/CMakeFiles/elmo_util.dir/thread_pool.cc.o" "gcc" "src/util/CMakeFiles/elmo_util.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
