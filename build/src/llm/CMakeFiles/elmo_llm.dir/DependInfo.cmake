
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/llm/expert_llm.cc" "src/llm/CMakeFiles/elmo_llm.dir/expert_llm.cc.o" "gcc" "src/llm/CMakeFiles/elmo_llm.dir/expert_llm.cc.o.d"
  "/root/repo/src/llm/openai_protocol.cc" "src/llm/CMakeFiles/elmo_llm.dir/openai_protocol.cc.o" "gcc" "src/llm/CMakeFiles/elmo_llm.dir/openai_protocol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/elmo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
