# Empty dependencies file for elmo_llm.
# This may be replaced when dependencies are built.
