file(REMOVE_RECURSE
  "CMakeFiles/elmo_llm.dir/expert_llm.cc.o"
  "CMakeFiles/elmo_llm.dir/expert_llm.cc.o.d"
  "CMakeFiles/elmo_llm.dir/openai_protocol.cc.o"
  "CMakeFiles/elmo_llm.dir/openai_protocol.cc.o.d"
  "libelmo_llm.a"
  "libelmo_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
