file(REMOVE_RECURSE
  "libelmo_llm.a"
)
