file(REMOVE_RECURSE
  "CMakeFiles/elmo_env.dir/device_model.cc.o"
  "CMakeFiles/elmo_env.dir/device_model.cc.o.d"
  "CMakeFiles/elmo_env.dir/env.cc.o"
  "CMakeFiles/elmo_env.dir/env.cc.o.d"
  "CMakeFiles/elmo_env.dir/mem_env.cc.o"
  "CMakeFiles/elmo_env.dir/mem_env.cc.o.d"
  "CMakeFiles/elmo_env.dir/posix_env.cc.o"
  "CMakeFiles/elmo_env.dir/posix_env.cc.o.d"
  "CMakeFiles/elmo_env.dir/sim_env.cc.o"
  "CMakeFiles/elmo_env.dir/sim_env.cc.o.d"
  "libelmo_env.a"
  "libelmo_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
