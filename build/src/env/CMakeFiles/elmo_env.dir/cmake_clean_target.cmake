file(REMOVE_RECURSE
  "libelmo_env.a"
)
