# Empty compiler generated dependencies file for elmo_env.
# This may be replaced when dependencies are built.
