file(REMOVE_RECURSE
  "CMakeFiles/hardware_explorer.dir/hardware_explorer.cpp.o"
  "CMakeFiles/hardware_explorer.dir/hardware_explorer.cpp.o.d"
  "hardware_explorer"
  "hardware_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardware_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
