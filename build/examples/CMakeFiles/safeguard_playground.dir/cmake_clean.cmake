file(REMOVE_RECURSE
  "CMakeFiles/safeguard_playground.dir/safeguard_playground.cpp.o"
  "CMakeFiles/safeguard_playground.dir/safeguard_playground.cpp.o.d"
  "safeguard_playground"
  "safeguard_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safeguard_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
