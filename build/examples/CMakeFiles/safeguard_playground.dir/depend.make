# Empty dependencies file for safeguard_playground.
# This may be replaced when dependencies are built.
