# Empty dependencies file for auto_tune.
# This may be replaced when dependencies are built.
