file(REMOVE_RECURSE
  "CMakeFiles/auto_tune.dir/auto_tune.cpp.o"
  "CMakeFiles/auto_tune.dir/auto_tune.cpp.o.d"
  "auto_tune"
  "auto_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
