# Empty compiler generated dependencies file for db_bench_sim.
# This may be replaced when dependencies are built.
