file(REMOVE_RECURSE
  "CMakeFiles/db_bench_sim.dir/db_bench_sim.cpp.o"
  "CMakeFiles/db_bench_sim.dir/db_bench_sim.cpp.o.d"
  "db_bench_sim"
  "db_bench_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_bench_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
