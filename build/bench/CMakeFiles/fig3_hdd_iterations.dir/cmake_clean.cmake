file(REMOVE_RECURSE
  "CMakeFiles/fig3_hdd_iterations.dir/fig3_hdd_iterations.cc.o"
  "CMakeFiles/fig3_hdd_iterations.dir/fig3_hdd_iterations.cc.o.d"
  "fig3_hdd_iterations"
  "fig3_hdd_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_hdd_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
