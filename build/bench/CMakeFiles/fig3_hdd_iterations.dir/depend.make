# Empty dependencies file for fig3_hdd_iterations.
# This may be replaced when dependencies are built.
