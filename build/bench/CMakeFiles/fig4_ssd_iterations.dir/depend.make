# Empty dependencies file for fig4_ssd_iterations.
# This may be replaced when dependencies are built.
