
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_ssd_iterations.cc" "bench/CMakeFiles/fig4_ssd_iterations.dir/fig4_ssd_iterations.cc.o" "gcc" "bench/CMakeFiles/fig4_ssd_iterations.dir/fig4_ssd_iterations.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/elmo/CMakeFiles/elmo_elmo.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/elmo_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/sysinfo/CMakeFiles/elmo_sysinfo.dir/DependInfo.cmake"
  "/root/repo/build/src/bench_kit/CMakeFiles/elmo_bench.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/elmo_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/elmo_table.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/elmo_env.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/elmo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
