file(REMOVE_RECURSE
  "CMakeFiles/fig4_ssd_iterations.dir/fig4_ssd_iterations.cc.o"
  "CMakeFiles/fig4_ssd_iterations.dir/fig4_ssd_iterations.cc.o.d"
  "fig4_ssd_iterations"
  "fig4_ssd_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ssd_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
