# Empty dependencies file for table1_2_hardware.
# This may be replaced when dependencies are built.
