file(REMOVE_RECURSE
  "CMakeFiles/table1_2_hardware.dir/table1_2_hardware.cc.o"
  "CMakeFiles/table1_2_hardware.dir/table1_2_hardware.cc.o.d"
  "table1_2_hardware"
  "table1_2_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_2_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
