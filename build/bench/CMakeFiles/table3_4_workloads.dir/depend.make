# Empty dependencies file for table3_4_workloads.
# This may be replaced when dependencies are built.
