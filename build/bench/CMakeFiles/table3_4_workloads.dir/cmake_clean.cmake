file(REMOVE_RECURSE
  "CMakeFiles/table3_4_workloads.dir/table3_4_workloads.cc.o"
  "CMakeFiles/table3_4_workloads.dir/table3_4_workloads.cc.o.d"
  "table3_4_workloads"
  "table3_4_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_4_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
