file(REMOVE_RECURSE
  "CMakeFiles/table5_option_trace.dir/table5_option_trace.cc.o"
  "CMakeFiles/table5_option_trace.dir/table5_option_trace.cc.o.d"
  "table5_option_trace"
  "table5_option_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_option_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
