# Empty compiler generated dependencies file for table5_option_trace.
# This may be replaced when dependencies are built.
