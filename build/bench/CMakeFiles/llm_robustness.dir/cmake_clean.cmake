file(REMOVE_RECURSE
  "CMakeFiles/llm_robustness.dir/llm_robustness.cc.o"
  "CMakeFiles/llm_robustness.dir/llm_robustness.cc.o.d"
  "llm_robustness"
  "llm_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
