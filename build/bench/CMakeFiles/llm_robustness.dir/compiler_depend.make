# Empty compiler generated dependencies file for llm_robustness.
# This may be replaced when dependencies are built.
