# Empty compiler generated dependencies file for db_sizes_test.
# This may be replaced when dependencies are built.
