file(REMOVE_RECURSE
  "CMakeFiles/db_sizes_test.dir/db_sizes_test.cc.o"
  "CMakeFiles/db_sizes_test.dir/db_sizes_test.cc.o.d"
  "db_sizes_test"
  "db_sizes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_sizes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
