# Empty dependencies file for db_invariants_test.
# This may be replaced when dependencies are built.
