file(REMOVE_RECURSE
  "CMakeFiles/db_invariants_test.dir/db_invariants_test.cc.o"
  "CMakeFiles/db_invariants_test.dir/db_invariants_test.cc.o.d"
  "db_invariants_test"
  "db_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
