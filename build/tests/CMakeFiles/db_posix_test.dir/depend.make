# Empty dependencies file for db_posix_test.
# This may be replaced when dependencies are built.
