file(REMOVE_RECURSE
  "CMakeFiles/db_posix_test.dir/db_posix_test.cc.o"
  "CMakeFiles/db_posix_test.dir/db_posix_test.cc.o.d"
  "db_posix_test"
  "db_posix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_posix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
