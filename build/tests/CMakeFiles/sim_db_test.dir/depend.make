# Empty dependencies file for sim_db_test.
# This may be replaced when dependencies are built.
