file(REMOVE_RECURSE
  "CMakeFiles/sim_db_test.dir/sim_db_test.cc.o"
  "CMakeFiles/sim_db_test.dir/sim_db_test.cc.o.d"
  "sim_db_test"
  "sim_db_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
