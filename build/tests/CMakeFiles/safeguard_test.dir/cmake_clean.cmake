file(REMOVE_RECURSE
  "CMakeFiles/safeguard_test.dir/safeguard_test.cc.o"
  "CMakeFiles/safeguard_test.dir/safeguard_test.cc.o.d"
  "safeguard_test"
  "safeguard_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safeguard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
