file(REMOVE_RECURSE
  "CMakeFiles/options_file_test.dir/options_file_test.cc.o"
  "CMakeFiles/options_file_test.dir/options_file_test.cc.o.d"
  "options_file_test"
  "options_file_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/options_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
