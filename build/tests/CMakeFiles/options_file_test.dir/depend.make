# Empty dependencies file for options_file_test.
# This may be replaced when dependencies are built.
