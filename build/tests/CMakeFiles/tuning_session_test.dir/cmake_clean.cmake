file(REMOVE_RECURSE
  "CMakeFiles/tuning_session_test.dir/tuning_session_test.cc.o"
  "CMakeFiles/tuning_session_test.dir/tuning_session_test.cc.o.d"
  "tuning_session_test"
  "tuning_session_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuning_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
