# Empty dependencies file for tuning_session_test.
# This may be replaced when dependencies are built.
