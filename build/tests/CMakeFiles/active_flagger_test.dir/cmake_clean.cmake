file(REMOVE_RECURSE
  "CMakeFiles/active_flagger_test.dir/active_flagger_test.cc.o"
  "CMakeFiles/active_flagger_test.dir/active_flagger_test.cc.o.d"
  "active_flagger_test"
  "active_flagger_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_flagger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
