# Empty dependencies file for active_flagger_test.
# This may be replaced when dependencies are built.
