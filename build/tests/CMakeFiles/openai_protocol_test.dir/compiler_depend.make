# Empty compiler generated dependencies file for openai_protocol_test.
# This may be replaced when dependencies are built.
