file(REMOVE_RECURSE
  "CMakeFiles/openai_protocol_test.dir/openai_protocol_test.cc.o"
  "CMakeFiles/openai_protocol_test.dir/openai_protocol_test.cc.o.d"
  "openai_protocol_test"
  "openai_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openai_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
