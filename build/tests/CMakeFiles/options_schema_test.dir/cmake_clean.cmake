file(REMOVE_RECURSE
  "CMakeFiles/options_schema_test.dir/options_schema_test.cc.o"
  "CMakeFiles/options_schema_test.dir/options_schema_test.cc.o.d"
  "options_schema_test"
  "options_schema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/options_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
