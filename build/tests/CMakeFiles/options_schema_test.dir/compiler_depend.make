# Empty compiler generated dependencies file for options_schema_test.
# This may be replaced when dependencies are built.
