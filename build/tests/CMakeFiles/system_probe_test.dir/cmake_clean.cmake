file(REMOVE_RECURSE
  "CMakeFiles/system_probe_test.dir/system_probe_test.cc.o"
  "CMakeFiles/system_probe_test.dir/system_probe_test.cc.o.d"
  "system_probe_test"
  "system_probe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_probe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
