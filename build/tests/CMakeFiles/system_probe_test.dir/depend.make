# Empty dependencies file for system_probe_test.
# This may be replaced when dependencies are built.
