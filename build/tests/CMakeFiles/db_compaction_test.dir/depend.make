# Empty dependencies file for db_compaction_test.
# This may be replaced when dependencies are built.
