file(REMOVE_RECURSE
  "CMakeFiles/db_compaction_test.dir/db_compaction_test.cc.o"
  "CMakeFiles/db_compaction_test.dir/db_compaction_test.cc.o.d"
  "db_compaction_test"
  "db_compaction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_compaction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
