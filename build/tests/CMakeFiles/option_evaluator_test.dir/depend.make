# Empty dependencies file for option_evaluator_test.
# This may be replaced when dependencies are built.
