file(REMOVE_RECURSE
  "CMakeFiles/option_evaluator_test.dir/option_evaluator_test.cc.o"
  "CMakeFiles/option_evaluator_test.dir/option_evaluator_test.cc.o.d"
  "option_evaluator_test"
  "option_evaluator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/option_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
