# Empty compiler generated dependencies file for expert_llm_test.
# This may be replaced when dependencies are built.
