file(REMOVE_RECURSE
  "CMakeFiles/expert_llm_test.dir/expert_llm_test.cc.o"
  "CMakeFiles/expert_llm_test.dir/expert_llm_test.cc.o.d"
  "expert_llm_test"
  "expert_llm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expert_llm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
