file(REMOVE_RECURSE
  "CMakeFiles/history_export_test.dir/history_export_test.cc.o"
  "CMakeFiles/history_export_test.dir/history_export_test.cc.o.d"
  "history_export_test"
  "history_export_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
