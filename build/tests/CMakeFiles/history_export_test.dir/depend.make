# Empty dependencies file for history_export_test.
# This may be replaced when dependencies are built.
