file(REMOVE_RECURSE
  "CMakeFiles/bench_runner_test.dir/bench_runner_test.cc.o"
  "CMakeFiles/bench_runner_test.dir/bench_runner_test.cc.o.d"
  "bench_runner_test"
  "bench_runner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
