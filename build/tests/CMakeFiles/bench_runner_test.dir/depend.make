# Empty dependencies file for bench_runner_test.
# This may be replaced when dependencies are built.
