// Tables 1 & 2: fillrandom on NVMe SSD across the hardware matrix
// {2,4} CPUs x {4,8} GiB — default vs ELMo-tuned throughput (Table 1)
// and p99 latency (Table 2).
#include "bench/bench_common.h"

using namespace elmo;
using namespace elmo::benchmain;

int main() {
  struct Cell {
    int cores;
    int mem_gib;
    TunedRun run;
  };
  std::vector<Cell> cells = {
      {2, 4, {}}, {2, 8, {}}, {4, 4, {}}, {4, 8, {}}};

  const auto spec = bench::WorkloadSpec::FillRandom(600000);
  for (auto& c : cells) {
    auto hw = HardwareProfile::Make(c.cores, c.mem_gib,
                                    DeviceModel::NvmeSsd());
    fprintf(stderr, "tuning fillrandom on %s ...\n", hw.Label().c_str());
    c.run = RunCell(hw, spec, /*seed=*/1000 + c.cores * 10 + c.mem_gib);
  }

  PrintHeader(
      "Table 1: Varying Hardware for Fillrandom on NVMe SSD - "
      "Throughput (ops/sec)",
      "paper Table 1");
  printf("%-8s | %9s | %9s | %9s | %9s\n", "Config", "2+4", "2+8", "4+4",
         "4+8");
  printf("%-8s | %9.0f | %9.0f | %9.0f | %9.0f\n", "Default",
         cells[0].run.baseline.ops_per_sec, cells[1].run.baseline.ops_per_sec,
         cells[2].run.baseline.ops_per_sec, cells[3].run.baseline.ops_per_sec);
  printf("%-8s | %9.0f | %9.0f | %9.0f | %9.0f\n", "Tuned",
         cells[0].run.tuned.ops_per_sec, cells[1].run.tuned.ops_per_sec,
         cells[2].run.tuned.ops_per_sec, cells[3].run.tuned.ops_per_sec);
  printf("%-8s | %8.1f%% | %8.1f%% | %8.1f%% | %8.1f%%\n", "Gain",
         (cells[0].run.outcome.ThroughputGain() - 1) * 100,
         (cells[1].run.outcome.ThroughputGain() - 1) * 100,
         (cells[2].run.outcome.ThroughputGain() - 1) * 100,
         (cells[3].run.outcome.ThroughputGain() - 1) * 100);
  printf("Paper:   Default 320377|301677|313992|310574 ; Tuned "
         "362460|348237|362796|329252 (up to +15.5%%)\n");

  PrintHeader(
      "Table 2: Varying Hardware for Fillrandom on NVMe SSD - p99 "
      "Latency (us)",
      "paper Table 2");
  printf("%-8s | %7s | %7s | %7s | %7s\n", "Config", "2+4", "2+8", "4+4",
         "4+8");
  printf("%-8s | %7.2f | %7.2f | %7.2f | %7.2f\n", "Default",
         cells[0].run.baseline.p99_write_us(),
         cells[1].run.baseline.p99_write_us(),
         cells[2].run.baseline.p99_write_us(),
         cells[3].run.baseline.p99_write_us());
  printf("%-8s | %7.2f | %7.2f | %7.2f | %7.2f\n", "Tuned",
         cells[0].run.tuned.p99_write_us(),
         cells[1].run.tuned.p99_write_us(),
         cells[2].run.tuned.p99_write_us(),
         cells[3].run.tuned.p99_write_us());
  printf("Paper:   Default 5.73|5.92|5.82|5.88 ; Tuned 5.01|5.42|5.03|5.62 "
         "(up to -13.5%%)\n");
  return 0;
}
