// Engine micro-benchmarks (google-benchmark): the building blocks the
// paper's substrate rests on. Not a paper table — these exist so
// engine-level regressions are visible independently of the tuning
// loop.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "bench_kit/bench_runner.h"
#include "elmo/online_tuner.h"
#include "llm/expert_llm.h"
#include "stress_kit/stress_driver.h"
#include "env/device_model.h"
#include "env/hardware_profile.h"
#include "env/mem_env.h"
#include "env/sim_env.h"
#include "lsm/db.h"
#include "lsm/dbformat.h"
#include "lsm/memtable.h"
#include "table/bloom.h"
#include "table/block.h"
#include "table/block_builder.h"
#include "table/cache.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/histogram.h"
#include "util/random.h"

namespace {

using namespace elmo;
using namespace elmo::lsm;

void BM_Crc32c(benchmark::State& state) {
  std::string data(state.range(0), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096)->Arg(65536);

void BM_VarintEncode(benchmark::State& state) {
  char buf[10];
  uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeVarint64(buf, v));
    v = v * 2862933555777941757ull + 3037000493ull;
  }
}
BENCHMARK(BM_VarintEncode);

void BM_MemTableAdd(benchmark::State& state) {
  InternalKeyComparator icmp(BytewiseComparator());
  auto mem = std::make_unique<MemTable>(icmp);
  Random64 rng(42);
  uint64_t seq = 1;
  std::string value(100, 'v');
  for (auto _ : state) {
    char key[16];
    EncodeFixed64(key, rng.Next());
    EncodeFixed64(key + 8, rng.Next());
    mem->Add(seq++, kTypeValue, Slice(key, 16), value);
    if (mem->ApproximateMemoryUsage() > (64 << 20)) {
      state.PauseTiming();
      mem = std::make_unique<MemTable>(icmp);
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_MemTableAdd);

void BM_MemTableGet(benchmark::State& state) {
  InternalKeyComparator icmp(BytewiseComparator());
  MemTable mem(icmp);
  std::string value(100, 'v');
  const int n = 100000;
  for (int i = 0; i < n; i++) {
    char key[16];
    snprintf(key, sizeof(key), "%015d", i);
    mem.Add(i + 1, kTypeValue, Slice(key, 16), value);
  }
  Random64 rng(42);
  std::string out;
  for (auto _ : state) {
    char key[16];
    snprintf(key, sizeof(key), "%015d", (int)rng.Uniform(n));
    LookupKey lk(Slice(key, 16), n + 1);
    Status s;
    benchmark::DoNotOptimize(mem.Get(lk, &out, &s));
  }
}
BENCHMARK(BM_MemTableGet);

void BM_BloomCreateAndQuery(benchmark::State& state) {
  BloomFilterPolicy policy(static_cast<int>(state.range(0)));
  std::vector<std::string> key_storage;
  std::vector<Slice> keys;
  for (int i = 0; i < 10000; i++) {
    key_storage.push_back("key" + std::to_string(i));
  }
  for (const auto& k : key_storage) keys.emplace_back(k);
  std::string filter;
  policy.CreateFilter(keys.data(), (int)keys.size(), &filter);
  Random64 rng(42);
  for (auto _ : state) {
    std::string probe = "key" + std::to_string(rng.Uniform(20000));
    benchmark::DoNotOptimize(policy.KeyMayMatch(probe, filter));
  }
}
BENCHMARK(BM_BloomCreateAndQuery)->Arg(10)->Arg(16);

void BM_BlockBuildAndSeek(benchmark::State& state) {
  BlockBuilder builder(16);
  for (int i = 0; i < 1000; i++) {
    char key[16];
    snprintf(key, sizeof(key), "%015d", i);
    builder.Add(Slice(key, 16), "value-payload-100b");
  }
  Block block(builder.Finish().ToString());
  Random64 rng(42);
  for (auto _ : state) {
    auto iter = block.NewIterator(BytewiseComparator());
    char key[16];
    snprintf(key, sizeof(key), "%015d", (int)rng.Uniform(1000));
    iter->Seek(Slice(key, 16));
    benchmark::DoNotOptimize(iter->Valid());
  }
}
BENCHMARK(BM_BlockBuildAndSeek);

void BM_LruCache(benchmark::State& state) {
  auto cache = NewLruCache(1 << 20);
  Random64 rng(42);
  for (auto _ : state) {
    char key[8];
    EncodeFixed64(key, rng.Uniform(10000));
    Slice k(key, 8);
    auto v = cache->Lookup(k);
    if (v == nullptr) {
      cache->Insert(k, std::make_shared<int>(7), 256);
    }
  }
}
BENCHMARK(BM_LruCache);

void BM_HistogramAdd(benchmark::State& state) {
  Histogram h;
  Random64 rng(42);
  for (auto _ : state) {
    h.Add(static_cast<double>(rng.Uniform(100000)));
  }
  benchmark::DoNotOptimize(h.Percentile(99.0));
}
BENCHMARK(BM_HistogramAdd);

void BM_DbPut(benchmark::State& state) {
  MemEnv env;
  Options options;
  options.env = &env;
  options.write_buffer_size = 8 << 20;
  std::unique_ptr<DB> db;
  Status s = DB::Open(options, "/bm", &db);
  if (!s.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  Random64 rng(42);
  std::string value(100, 'v');
  for (auto _ : state) {
    char key[16];
    EncodeFixed64(key, rng.Next());
    EncodeFixed64(key + 8, rng.Next());
    Status ps = db->Put({}, Slice(key, 16), value);
    if (!ps.ok()) {
      state.SkipWithError("put failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DbPut);

void BM_DbGet(benchmark::State& state) {
  MemEnv env;
  Options options;
  options.env = &env;
  options.write_buffer_size = 4 << 20;
  options.bloom_filter_bits_per_key = static_cast<int>(state.range(0));
  std::unique_ptr<DB> db;
  Status s = DB::Open(options, "/bm", &db);
  if (!s.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  const int n = 200000;
  std::string value(100, 'v');
  for (int i = 0; i < n; i++) {
    char key[16];
    snprintf(key, sizeof(key), "%015d", i);
    db->Put({}, Slice(key, 16), value);
  }
  db->WaitForBackgroundWork();
  Random64 rng(42);
  std::string out;
  for (auto _ : state) {
    char key[16];
    snprintf(key, sizeof(key), "%015d", (int)rng.Uniform(n));
    benchmark::DoNotOptimize(db->Get({}, Slice(key, 16), &out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DbGet)->Arg(0)->Arg(10);

}  // namespace

// Write a JSON benchmark report (headline numbers + the engine's
// sampled time series) of a small SimEnv fillrandom smoke run. CI
// uploads this file as a workflow artifact.
static int WriteSmokeReport(const std::string& path) {
  const auto hw =
      elmo::HardwareProfile::Make(2, 4, elmo::DeviceModel::NvmeSsd());
  elmo::bench::BenchRunner runner(hw, /*seed=*/42);
  elmo::bench::WorkloadSpec spec =
      elmo::bench::WorkloadSpec::FillRandom(60000);
  elmo::lsm::Options opts;
  const elmo::bench::BenchResult result = runner.Run(spec, opts);

  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "micro_engine: cannot write %s\n", path.c_str());
    return 1;
  }
  const std::string json = result.ToJson();
  fwrite(json.data(), 1, json.size(), f);
  fputc('\n', f);
  fclose(f);
  fprintf(stderr, "micro_engine: smoke report (%zu samples) -> %s\n",
          result.timeseries.size(), path.c_str());
  return result.timeseries.empty() ? 1 : 0;
}

// Materialize a small real on-disk DB (SSTs, MANIFEST, LOG, plus IO
// and block-cache traces) at `dir` for elmo_dump to inspect. CI drives
// the inspection CLI over exactly this output.
static int WriteDumpableDb(const std::string& dir) {
  elmo::lsm::Options opts;
  opts.env = elmo::Env::Posix();
  opts.create_if_missing = true;
  opts.write_buffer_size = 64 << 10;  // several flush-sized SSTs
  opts.block_cache_size = 256 << 10;
  opts.bloom_filter_bits_per_key = 10;
  // Sample fast and export metrics so the dump carries live-monitor
  // artifacts too: full sampler_tick events in the LOG (elmo_dump
  // health / elmo_top replay them) and a Prometheus snapshot on close.
  opts.stats_sample_interval_ms = 5;
  opts.metrics_export_path = dir + "/metrics.prom";

  std::unique_ptr<DB> db;
  Status s = DB::Open(opts, dir, &db);
  if (!s.ok()) {
    fprintf(stderr, "micro_engine: open %s: %s\n", dir.c_str(),
            s.ToString().c_str());
    return 1;
  }
  // Capture everything, so the slow-op log has both the tail and a
  // sampled baseline for elmo_dump span-analyze to attribute.
  elmo::lsm::SpanTraceOptions span_opts;
  span_opts.slow_op_threshold_us = 0;
  span_opts.sample_every = 1;
  if (!db->StartIOTrace(dir + "/io.trace").ok() ||
      !db->StartBlockCacheTrace(dir + "/cache.trace").ok() ||
      !db->StartSpanTrace(dir + "/span.trace", span_opts).ok()) {
    fprintf(stderr, "micro_engine: trace start failed\n");
    return 1;
  }

  // Pause between phases: the real-env sampler thread runs on wall
  // time, and each pause spans a few 5ms intervals, so the LOG records
  // sampler ticks for the write, flush and read phases.
  const std::string value(256, 'v');
  for (int i = 0; i < 3000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i * 7919 % 1000);
    if (!db->Put({}, key, value).ok()) return 1;
    if (i % 1000 == 999) opts.env->SleepForMicroseconds(12000);
  }
  db->FlushMemTable();
  opts.env->SleepForMicroseconds(12000);
  // A live SetOptions batch between the write and read phases, so the
  // LOG carries an options_change event for elmo_top's pane and the
  // OPTIONS file records the post-change state.
  if (!db->SetOptions({{"write_buffer_size", "131072"},
                       {"max_background_jobs", "3"}})
           .ok()) {
    fprintf(stderr, "micro_engine: SetOptions failed\n");
    return 1;
  }
  std::string out;
  for (int i = 0; i < 1000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    db->Get({}, key, &out);
    if (i % 500 == 499) opts.env->SleepForMicroseconds(12000);
  }

  if (!db->EndIOTrace().ok() || !db->EndBlockCacheTrace().ok() ||
      !db->EndSpanTrace().ok()) {
    fprintf(stderr, "micro_engine: trace end failed\n");
    return 1;
  }
  db.reset();
  fprintf(stderr, "micro_engine: dumpable db -> %s\n", dir.c_str());
  return 0;
}

// Run the flagship smoke workload shape under FaultInjectionEnv: one
// short randomized segment, one crash/reopen cycle, full oracle
// verification. A cheap crash-safety canary next to the perf canaries.
static int RunFaultSmoke(uint64_t seed) {
  elmo::stress::StressConfig cfg;
  cfg.seed = seed;
  cfg.ops = 3000;
  cfg.crash_cycles = 1;
  cfg.num_keys = 256;
  cfg.db_path = "/fault_smoke";
  const elmo::stress::StressReport report = elmo::stress::RunStress(cfg);
  if (!report.ok) {
    fprintf(stderr, "micro_engine: fault smoke FAILED: %s\n",
            report.first_divergence.c_str());
    return 1;
  }
  fprintf(stderr,
          "micro_engine: fault smoke ok (seed=%llu, %llu ops, "
          "%llu kill-point fires)\n",
          static_cast<unsigned long long>(seed),
          static_cast<unsigned long long>(report.ops_executed),
          static_cast<unsigned long long>(report.kill_point_fires));
  return 0;
}

// Run the phased SimEnv workload with a live OnlineTuner on the bench
// hook (simulated LLM, fixed seed) and write the tuning timeline JSON
// to `path`. Fails unless the session applied at least one delta and
// never re-proposed a rolled-back one — the rollback-loop oscillation
// smell CI guards against.
static int RunOnlineTuningSmoke(const std::string& path) {
  const auto hw =
      elmo::HardwareProfile::Make(4, 4, elmo::DeviceModel::NvmeSsd());
  elmo::bench::BenchRunner runner(hw, /*seed=*/42);

  elmo::llm::ExpertConfig ecfg;
  ecfg.seed = 42;
  elmo::llm::SimulatedExpertLlm expert(ecfg);

  elmo::tune::OnlineTunerConfig cfg;
  cfg.memory_budget_bytes =
      (hw.memory_bytes - elmo::SimEnv::kOsBaselineBytes) /
      elmo::bench::kCapacityScale;

  std::unique_ptr<elmo::tune::OnlineTuner> tuner;
  elmo::lsm::DB* tuner_db = nullptr;
  auto hook = [&](elmo::lsm::DB* db, uint64_t) {
    if (db != tuner_db) {
      tuner_db = db;
      tuner = std::make_unique<elmo::tune::OnlineTuner>(db, &expert, cfg);
    }
    tuner->Poll();
  };
  const elmo::bench::BenchResult result = runner.RunWithHook(
      elmo::bench::WorkloadSpec::Phased(), elmo::lsm::Options(), hook);

  if (tuner == nullptr) {
    fprintf(stderr, "micro_engine: tuning smoke never saw the DB\n");
    return 1;
  }
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "micro_engine: cannot write %s\n", path.c_str());
    return 1;
  }
  const std::string json = tuner->TimelineJson();
  fwrite(json.data(), 1, json.size(), f);
  fputc('\n', f);
  fclose(f);
  fprintf(stderr,
          "micro_engine: tuning smoke %.0f ops/s, %d delta(s) applied, "
          "%d rollback(s), %d oscillation(s) -> %s\n",
          result.ops_per_sec, tuner->applied_deltas(), tuner->rollbacks(),
          tuner->oscillations(), path.c_str());
  if (tuner->applied_deltas() < 1) {
    fprintf(stderr, "micro_engine: tuning smoke FAILED: no delta applied\n");
    return 1;
  }
  if (tuner->oscillations() != 0) {
    fprintf(stderr,
            "micro_engine: tuning smoke FAILED: rollback-loop oscillation\n");
    return 1;
  }
  return 0;
}

// BENCHMARK_MAIN plus --elmo_smoke_json=<path> / --elmo_dump_db=<dir> /
// --fault_seed=<n> / --elmo_online_tuning_json=<path> flags (consumed
// before google-benchmark sees the argument list).
int main(int argc, char** argv) {
  std::string smoke_path;
  std::string dump_db_dir;
  std::string fault_seed;
  std::string tuning_path;
  int out_argc = 1;
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    const std::string smoke_prefix = "--elmo_smoke_json=";
    const std::string dump_prefix = "--elmo_dump_db=";
    const std::string fault_prefix = "--fault_seed=";
    const std::string tuning_prefix = "--elmo_online_tuning_json=";
    if (arg.rfind(smoke_prefix, 0) == 0) {
      smoke_path = arg.substr(smoke_prefix.size());
    } else if (arg.rfind(dump_prefix, 0) == 0) {
      dump_db_dir = arg.substr(dump_prefix.size());
    } else if (arg.rfind(fault_prefix, 0) == 0) {
      fault_seed = arg.substr(fault_prefix.size());
    } else if (arg.rfind(tuning_prefix, 0) == 0) {
      tuning_path = arg.substr(tuning_prefix.size());
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!fault_seed.empty()) {
    int rc = RunFaultSmoke(elmo::stress::StressSeedFromString(fault_seed));
    if (rc != 0) return rc;
  }
  if (!dump_db_dir.empty()) {
    int rc = WriteDumpableDb(dump_db_dir);
    if (rc != 0) return rc;
  }
  if (!tuning_path.empty()) {
    int rc = RunOnlineTuningSmoke(tuning_path);
    if (rc != 0) return rc;
  }
  if (!smoke_path.empty()) return WriteSmokeReport(smoke_path);
  return 0;
}
