// Ablation bench: one-factor-at-a-time impact of the options the
// DESIGN calls out as load-bearing, on both device classes. This is
// the ground truth the LLM's suggestions are competing against — it
// shows *why* the tuned configurations in Tables 1-4 win.
#include "bench/bench_common.h"

using namespace elmo;
using namespace elmo::benchmain;

namespace {

struct Variant {
  const char* name;
  lsm::Options opts;
  bool write_side;  // evaluate on fillrandom (else mixed workload)
};

std::vector<Variant> MakeVariants() {
  std::vector<Variant> variants;
  lsm::Options def;

  variants.push_back({"default", def, true});

  {
    lsm::Options o = def;
    o.wal_bytes_per_sync = 1 << 20;
    o.bytes_per_sync = 1 << 20;
    variants.push_back({"+bytes_per_sync=1M", o, true});
  }
  {
    lsm::Options o = def;
    o.max_background_jobs = 6;
    variants.push_back({"+background_jobs=6", o, true});
  }
  {
    lsm::Options o = def;
    o.write_buffer_size = 128ull << 20;
    o.max_write_buffer_number = 4;
    variants.push_back({"+bigger_memtables", o, true});
  }
  {
    lsm::Options o = def;
    o.compaction_readahead_size = 4 << 20;
    variants.push_back({"+readahead=4M", o, true});
  }
  {
    lsm::Options o = def;
    o.enable_pipelined_write = false;
    variants.push_back({"-pipelined_write", o, true});
  }
  {
    lsm::Options o = def;
    o.bloom_filter_bits_per_key = 10;
    variants.push_back({"+bloom=10bits", o, false});
  }
  {
    lsm::Options o = def;
    o.block_cache_size = 1ull << 30;
    variants.push_back({"+cache=1G", o, false});
  }
  {
    lsm::Options o = def;
    o.compaction_style = lsm::CompactionStyle::kUniversal;
    variants.push_back({"universal_compaction", o, true});
  }
  {
    lsm::Options o = def;
    o.level_compaction_dynamic_level_bytes = true;
    variants.push_back({"+dynamic_levels", o, true});
  }
  return variants;
}

}  // namespace

int main() {
  PrintHeader("Ablation: single-option impact vs default",
              "DESIGN.md §4 design-choice ablations (not a paper table)");

  const auto write_spec = bench::WorkloadSpec::FillRandom(300000);
  const auto mixed_spec = bench::WorkloadSpec::Mixgraph(100000);

  for (const auto& dev :
       {DeviceModel::NvmeSsd(), DeviceModel::SataHdd()}) {
    printf("\n--- %s (2 CPUs + 4 GiB) ---\n", dev.name.c_str());
    printf("%-24s | %-10s | %10s | %9s | %9s | %8s\n", "variant",
           "workload", "ops/sec", "p99w(us)", "p99r(us)", "vs def");
    auto hw = HardwareProfile::Make(2, 4, dev);
    bench::BenchRunner runner(hw);

    lsm::Options def;
    const double def_write_tput =
        runner.Run(write_spec, def).ops_per_sec;
    const double def_mixed_tput =
        runner.Run(mixed_spec, def).ops_per_sec;

    for (const auto& v : MakeVariants()) {
      const auto& spec = v.write_side ? write_spec : mixed_spec;
      auto r = runner.Run(spec, v.opts);
      const double base = v.write_side ? def_write_tput : def_mixed_tput;
      printf("%-24s | %-10s | %10.0f | %9.2f | %9.2f | %7.2fx\n", v.name,
             r.workload.c_str(), r.ops_per_sec, r.p99_write_us(),
             r.p99_read_us(), base > 0 ? r.ops_per_sec / base : 0.0);
    }
  }
  return 0;
}
