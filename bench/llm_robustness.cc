// Robustness extension (paper §3/§6 discussion, not a numbered table):
// sweep the simulated LLM's fault rates and measure how the Safeguard
// Enforcer + Active Flagger hold the tuning outcome together. The
// paper argues safeguards are essential; this bench quantifies it.
#include "bench/bench_common.h"

using namespace elmo;
using namespace elmo::benchmain;

int main() {
  PrintHeader(
      "LLM robustness: tuning outcome vs fault injection rate",
      "paper §3 (challenges) / §4.2 (Safeguard Enforcer) — extension");

  const auto hw = HardwareProfile::Make(2, 4, DeviceModel::SataHdd());
  const auto spec = bench::WorkloadSpec::FillRandom(200000);

  printf("%-28s | %9s | %9s | %6s | %7s | %7s | %7s\n", "fault profile",
         "baseline", "tuned", "gain", "halluc", "blocked", "invalid");

  struct Profile {
    const char* name;
    double hallucination, deprecated, blacklist;
  };
  const Profile profiles[] = {
      {"clean (no faults)", 0.0, 0.0, 0.0},
      {"paper-like (default)", 0.20, 0.15, 0.10},
      {"flaky (50% each)", 0.50, 0.50, 0.50},
      {"adversarial (always)", 1.0, 1.0, 1.0},
  };

  for (const auto& p : profiles) {
    bench::BenchRunner runner(hw);
    llm::ExpertConfig ecfg;
    ecfg.seed = 777;
    ecfg.hallucination_rate = p.hallucination;
    ecfg.deprecated_rate = p.deprecated;
    ecfg.blacklist_poke_rate = p.blacklist;
    llm::SimulatedExpertLlm gpt(ecfg);
    tune::TuningSession session(&runner, &gpt, spec);
    auto out = session.Run();

    int halluc = 0, blocked = 0, invalid = 0;
    for (const auto& it : out.iterations) {
      halluc += static_cast<int>(it.safeguard.rejected_unknown.size() +
                                 it.safeguard.rejected_deprecated.size());
      blocked += static_cast<int>(it.safeguard.rejected_blacklisted.size());
      invalid += static_cast<int>(it.safeguard.rejected_invalid.size());
    }
    printf("%-28s | %9.0f | %9.0f | %5.2fx | %7d | %7d | %7d\n", p.name,
           out.baseline.ops_per_sec, out.best_result.ops_per_sec,
           out.ThroughputGain(), halluc, blocked, invalid);
  }

  printf("\nInvariant: with safeguards active, even an adversarial "
         "responder can never make the kept configuration worse than "
         "the out-of-box baseline (the Active Flagger reverts "
         "regressions; the blacklist protects durability).\n");
  return 0;
}
