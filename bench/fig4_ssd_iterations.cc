// Figure 4: varying workloads on NVMe SSD — per-iteration throughput
// (a), p99 write latency (b), p99 read latency (c).
#include "bench/fig_iterations_common.h"

int main() {
  elmo::benchmain::RunIterationFigure("Figure 4",
                                      elmo::DeviceModel::NvmeSsd(),
                                      "paper Figure 4");
  return 0;
}
