// Shared driver for Figures 3 and 4: per-iteration throughput and p99
// series for three workloads on one device. Iteration 0 is the default
// configuration; iterations 1-7 plot the configuration the LLM proposed
// that round (kept or not), matching the paper's per-iteration bars.
#pragma once

#include "bench/bench_common.h"

namespace elmo::benchmain {

inline void RunIterationFigure(const char* figure_name,
                               const DeviceModel& device,
                               const char* paper_ref) {
  const auto hw = HardwareProfile::Make(2, 4, device);

  struct Series {
    const char* label;
    bench::WorkloadSpec spec;
    tune::TuningOutcome outcome;
  };
  std::vector<Series> series = {
      {"Fillrandom", bench::WorkloadSpec::FillRandom(400000), {}},
      {"Mixgraph", bench::WorkloadSpec::Mixgraph(150000), {}},
      {"RRWR", bench::WorkloadSpec::ReadRandomWriteRandom(150000), {}},
  };
  // The paper discards readrandom on HDD (<10 ops/sec, times out);
  // Figure 3/4 plot only these three workloads.

  uint64_t seed = 3000 + (device.name == "SATA HDD" ? 0 : 500);
  for (auto& s : series) {
    fprintf(stderr, "figure series %s on %s ...\n", s.label,
            hw.Label().c_str());
    s.outcome = RunCell(hw, s.spec, seed++).outcome;
  }

  PrintHeader(std::string(figure_name) + " (a): Throughput (ops/sec), " +
                  device.name + ", 2 CPUs + 4 GiB",
              paper_ref);
  printf("%-12s |", "Iteration");
  for (int it = 0; it <= 7; it++) printf(" %9d |", it);
  printf("\n");
  for (const auto& s : series) {
    printf("%-12s |", s.label);
    printf(" %9.0f |", s.outcome.baseline.ops_per_sec);
    for (int it = 1; it <= 7; it++) {
      if (it <= static_cast<int>(s.outcome.iterations.size())) {
        printf(" %9.0f |", s.outcome.iterations[it - 1].result.ops_per_sec);
      } else {
        printf(" %9s |", "-");
      }
    }
    printf("\n");
  }

  PrintHeader(std::string(figure_name) + " (b): P99 Latency (Write, us)",
              paper_ref);
  printf("%-12s |", "Iteration");
  for (int it = 0; it <= 7; it++) printf(" %9d |", it);
  printf("\n");
  for (const auto& s : series) {
    printf("%-12s |", s.label);
    printf(" %9.2f |", s.outcome.baseline.p99_write_us());
    for (int it = 1; it <= 7; it++) {
      if (it <= static_cast<int>(s.outcome.iterations.size())) {
        printf(" %9.2f |", s.outcome.iterations[it - 1].result.p99_write_us());
      } else {
        printf(" %9s |", "-");
      }
    }
    printf("\n");
  }

  PrintHeader(std::string(figure_name) + " (c): P99 Latency (Read, us)",
              paper_ref);
  printf("%-12s |", "Iteration");
  for (int it = 0; it <= 7; it++) printf(" %9d |", it);
  printf("\n");
  for (const auto& s : series) {
    if (s.outcome.baseline.read_micros.Count() == 0) continue;  // FR
    printf("%-12s |", s.label);
    printf(" %9.2f |", s.outcome.baseline.p99_read_us());
    for (int it = 1; it <= 7; it++) {
      if (it <= static_cast<int>(s.outcome.iterations.size())) {
        printf(" %9.2f |", s.outcome.iterations[it - 1].result.p99_read_us());
      } else {
        printf(" %9s |", "-");
      }
    }
    printf("\n");
  }

  PrintHeader(std::string(figure_name) +
                  " (d): Throughput over time (engine sampler)",
              paper_ref);
  for (const auto& s : series) {
    printf("%s, default configuration:\n%s", s.label,
           bench::TimeSeriesTable(s.outcome.baseline.timeseries, 10).c_str());
    printf("%s, best tuned configuration:\n%s\n", s.label,
           bench::TimeSeriesTable(s.outcome.best_result.timeseries, 10)
               .c_str());
  }

  // Summary line: the paper's headline claims.
  printf("\nSummary (best vs default):\n");
  for (const auto& s : series) {
    printf("  %-12s throughput %.2fx", s.label,
           s.outcome.ThroughputGain());
    double base_p99 = std::max(s.outcome.baseline.p99_write_us(),
                               s.outcome.baseline.p99_read_us());
    double best_p99 = std::max(s.outcome.best_result.p99_write_us(),
                               s.outcome.best_result.p99_read_us());
    if (best_p99 > 0) {
      printf(", worst p99 %.2fx better", base_p99 / best_p99);
    }
    printf("\n");
  }
}

}  // namespace elmo::benchmain
