// Figure 3: varying workloads on SATA HDD — per-iteration throughput
// (a), p99 write latency (b), p99 read latency (c).
#include "bench/fig_iterations_common.h"

int main() {
  elmo::benchmain::RunIterationFigure("Figure 3",
                                      elmo::DeviceModel::SataHdd(),
                                      "paper Figure 3");
  return 0;
}
