// Table 5: the option-change trace — which options the LLM modified at
// each iteration for fillrandom on SATA HDD with 2 CPUs + 4 GiB
// (paper: 23 options touched by iteration 7, 15 shown).
#include <map>
#include <set>

#include "bench/bench_common.h"
#include "lsm/options_schema.h"

using namespace elmo;
using namespace elmo::benchmain;

int main() {
  const auto hw = HardwareProfile::Make(2, 4, DeviceModel::SataHdd());
  const auto spec = bench::WorkloadSpec::FillRandom(400000);
  fprintf(stderr, "tuning fillrandom on %s ...\n", hw.Label().c_str());
  TunedRun run = RunCell(hw, spec, /*seed=*/4242);

  // Collect every option changed in any iteration, in first-touched
  // order (the paper sorts roughly by first appearance).
  std::vector<std::string> row_order;
  std::set<std::string> seen;
  for (const auto& it : run.outcome.iterations) {
    for (const auto& [name, value] : it.applied_changes) {
      if (seen.insert(name).second) row_order.push_back(name);
    }
  }

  PrintHeader("Table 5: Changes in options over iterations by the LLM",
              "paper Table 5");
  printf("fillrandom on SATA HDD, 2 CPUs + 4 GiB; %zu distinct options "
         "touched across %zu iterations\n\n",
         row_order.size(), run.outcome.iterations.size());

  printf("%-36s | %-12s", "Parameter", "Default");
  for (size_t i = 1; i <= run.outcome.iterations.size(); i++) {
    printf(" | Iter %zu", i);
  }
  printf("\n");

  const auto& schema = lsm::OptionsSchema::Instance();
  lsm::Options defaults;
  for (const auto& name : row_order) {
    const auto* info = schema.Find(name);
    printf("%-36s | %-12s", name.c_str(),
           info != nullptr ? info->get(defaults).c_str() : "?");
    for (const auto& it : run.outcome.iterations) {
      auto found = it.applied_changes.find(name);
      if (found != it.applied_changes.end()) {
        printf(" | %s%s", found->second.c_str(), it.kept ? "" : "*");
      } else {
        printf(" | %s", "");
      }
    }
    printf("\n");
  }
  printf("\n(* = iteration was reverted by the Active Flagger)\n");

  printf("\nSafeguard interventions during the trace:\n");
  for (const auto& it : run.outcome.iterations) {
    if (it.safeguard.total_rejected() > 0) {
      printf("  iteration %d: %s\n", it.iteration,
             it.safeguard.Summary().c_str());
    }
  }

  printf("\nFinal tuned configuration:\n%s",
         run.outcome.final_options_file.c_str());
  return 0;
}
