// Shared helpers for the paper-reproduction bench binaries. Each bench
// regenerates one table or figure from the paper's evaluation (§5.2);
// see DESIGN.md §3 for the index.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "bench_kit/bench_runner.h"
#include "elmo/tuning_session.h"
#include "env/device_model.h"
#include "env/hardware_profile.h"
#include "llm/expert_llm.h"

namespace elmo::benchmain {

struct TunedRun {
  bench::BenchResult baseline;
  bench::BenchResult tuned;
  tune::TuningOutcome outcome;
};

// Runs a full ELMo-Tune session (iteration 0 = defaults, then
// `iterations` LLM rounds) for one hardware/workload cell.
inline TunedRun RunCell(const HardwareProfile& hw,
                        const bench::WorkloadSpec& spec, uint64_t seed,
                        int iterations = 7) {
  bench::BenchRunner runner(hw, /*seed=*/42);
  llm::ExpertConfig ecfg;
  ecfg.seed = seed;
  llm::SimulatedExpertLlm gpt(ecfg);
  tune::TuningConfig tcfg;
  tcfg.max_iterations = iterations;
  tune::TuningSession session(&runner, &gpt, spec, tcfg);

  TunedRun run;
  run.outcome = session.Run();
  run.baseline = run.outcome.baseline;
  run.tuned = run.outcome.best_result;
  return run;
}

inline void PrintHeader(const std::string& title,
                        const std::string& paper_ref) {
  printf("\n=====================================================\n");
  printf("%s\n", title.c_str());
  printf("(reproduces %s; see EXPERIMENTS.md for the paper-vs-measured "
         "comparison)\n",
         paper_ref.c_str());
  printf("=====================================================\n");
}

inline const char* DeviceShort(const DeviceModel& d) {
  return d.name == "SATA HDD" ? "HDD" : "NVMe";
}

}  // namespace elmo::benchmain
