// Tables 3 & 4: the four workloads (FR / RR / RRWR / Mixgraph) on
// 4 CPUs + 4 GiB + NVMe SSD — default vs ELMo-tuned throughput
// (Table 3) and p99 latency with write/read split (Table 4).
#include "bench/bench_common.h"

using namespace elmo;
using namespace elmo::benchmain;

int main() {
  const auto hw = HardwareProfile::Make(4, 4, DeviceModel::NvmeSsd());

  struct Row {
    const char* label;
    bench::WorkloadSpec spec;
    TunedRun run;
  };
  std::vector<Row> rows = {
      {"FR", bench::WorkloadSpec::FillRandom(600000), {}},
      {"RR", bench::WorkloadSpec::ReadRandom(40000, 400000), {}},
      {"RRWR", bench::WorkloadSpec::ReadRandomWriteRandom(200000), {}},
      {"Mixgraph", bench::WorkloadSpec::Mixgraph(200000), {}},
  };

  uint64_t seed = 2000;
  for (auto& r : rows) {
    fprintf(stderr, "tuning %s on %s ...\n", r.label, hw.Label().c_str());
    r.run = RunCell(hw, r.spec, seed++);
  }

  PrintHeader(
      "Table 3: Varying Workloads with 4 CPUs & 4 GiB on NVMe SSD - "
      "Throughput (ops/sec)",
      "paper Table 3");
  printf("%-8s | %10s | %10s | %10s | %10s\n", "Config", "FR", "RR", "RRWR",
         "Mixgraph");
  printf("%-8s | %10.0f | %10.0f | %10.0f | %10.0f\n", "Default",
         rows[0].run.baseline.ops_per_sec, rows[1].run.baseline.ops_per_sec,
         rows[2].run.baseline.ops_per_sec, rows[3].run.baseline.ops_per_sec);
  printf("%-8s | %10.0f | %10.0f | %10.0f | %10.0f\n", "Tuned",
         rows[0].run.tuned.ops_per_sec, rows[1].run.tuned.ops_per_sec,
         rows[2].run.tuned.ops_per_sec, rows[3].run.tuned.ops_per_sec);
  printf("%-8s | %9.2fx | %9.2fx | %9.2fx | %9.2fx\n", "Gain",
         rows[0].run.outcome.ThroughputGain(),
         rows[1].run.outcome.ThroughputGain(),
         rows[2].run.outcome.ThroughputGain(),
         rows[3].run.outcome.ThroughputGain());
  printf("Paper:   Default 313992|1928|13217|17928 ; Tuned "
         "362796|5178|43598|23488 (1.16x|2.69x|3.30x|1.31x)\n");

  PrintHeader(
      "Table 4: Varying Workloads with 4 CPUs & 4 GiB on NVMe SSD - p99 "
      "Latency (us)",
      "paper Table 4");
  printf("%-8s | %10s | %12s | %22s | %22s\n", "Config", "FR", "RR",
         "RRWR (write/read)", "Mixgraph (write/read)");
  printf("%-8s | %10.2f | %12.2f | %10.2f / %9.2f | %10.2f / %9.2f\n",
         "Default", rows[0].run.baseline.p99_write_us(),
         rows[1].run.baseline.p99_read_us(),
         rows[2].run.baseline.p99_write_us(),
         rows[2].run.baseline.p99_read_us(),
         rows[3].run.baseline.p99_write_us(),
         rows[3].run.baseline.p99_read_us());
  printf("%-8s | %10.2f | %12.2f | %10.2f / %9.2f | %10.2f / %9.2f\n",
         "Tuned", rows[0].run.tuned.p99_write_us(),
         rows[1].run.tuned.p99_read_us(), rows[2].run.tuned.p99_write_us(),
         rows[2].run.tuned.p99_read_us(), rows[3].run.tuned.p99_write_us(),
         rows[3].run.tuned.p99_read_us());
  printf("Paper:   Default 5.82|2697.55|57.32/1463.61|14.87/325.65 ; "
         "Tuned 5.03|155.02|28.21/169.10|14.59/245.56\n");
  return 0;
}
