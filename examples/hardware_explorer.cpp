// hardware_explorer: sweep one configuration across the simulated
// hardware grid (cores x memory x device) — the kind of what-if
// exploration the paper's Docker matrix enables, in seconds.
//
//   ./build/examples/hardware_explorer [fillrandom|mixgraph|rrwr]
#include <cstdio>
#include <string>

#include "bench_kit/bench_runner.h"

using namespace elmo;

int main(int argc, char** argv) {
  const std::string workload = argc > 1 ? argv[1] : "fillrandom";

  bench::WorkloadSpec spec;
  if (workload == "mixgraph") {
    spec = bench::WorkloadSpec::Mixgraph(100000);
  } else if (workload == "rrwr") {
    spec = bench::WorkloadSpec::ReadRandomWriteRandom(100000);
  } else {
    spec = bench::WorkloadSpec::FillRandom(300000);
  }

  lsm::Options config;  // out-of-box defaults; edit to explore

  printf("workload: %s\n\n", spec.Describe().c_str());
  printf("%-22s | %10s | %9s | %9s | %7s\n", "hardware", "ops/sec",
         "p99w(us)", "p99r(us)", "stalls");

  for (const auto& dev :
       {DeviceModel::NvmeSsd(), DeviceModel::SataHdd()}) {
    for (int cores : {2, 4}) {
      for (int mem : {4, 8}) {
        auto hw = HardwareProfile::Make(cores, mem, dev);
        bench::BenchRunner runner(hw);
        auto r = runner.Run(spec, config);
        printf("%-22s | %10.0f | %9.2f | %9.2f | %7llu\n",
               hw.Label().c_str(), r.ops_per_sec, r.p99_write_us(),
               r.p99_read_us(),
               (unsigned long long)(r.write_slowdowns + r.write_stops));
      }
    }
  }
  printf("\nEdit `config` in this example to see how option changes "
         "shift each cell.\n");
  return 0;
}
