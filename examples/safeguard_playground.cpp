// safeguard_playground: feed hand-written "LLM responses" through the
// Option Evaluator + Safeguard Enforcer pipeline and watch what gets
// applied, clamped or rejected — the paper's hallucination-handling
// path, interactively.
//
//   ./build/examples/safeguard_playground
#include <cstdio>

#include "elmo/option_evaluator.h"
#include "elmo/safeguard.h"
#include "lsm/options_schema.h"

using namespace elmo;
using namespace elmo::tune;

namespace {

void Demo(const char* title, const std::string& response) {
  printf("=== %s ===\n", title);
  printf("response:\n%s\n", response.c_str());

  ExtractedProposals proposals = OptionEvaluator::Extract(response);
  printf("evaluator extracted %zu proposal(s)%s\n", proposals.pairs.size(),
         proposals.had_code_block ? " (code block found)" : "");

  SafeguardEnforcer safeguard;
  lsm::Options base;  // defaults
  lsm::Options result;
  SafeguardReport report = safeguard.Validate(base, proposals.pairs,
                                              &result);
  printf("safeguard: %s\n\n", report.Summary().c_str());
}

}  // namespace

int main() {
  Demo("well-formed response",
       "Raise parallelism for your 4 cores.\n"
       "```ini\n"
       "[DBOptions]\n"
       "max_background_jobs = 6\n"
       "bytes_per_sync = 1048576\n"
       "```\n");

  Demo("interleaved prose + block",
       "First set write_buffer_size = 134217728 for fewer flushes.\n"
       "Then apply:\n"
       "```\n"
       "max_write_buffer_number = 4\n"
       "```\n");

  Demo("hallucinated option",
       "```ini\n"
       "memtable_prefetch_depth = 8\n"
       "max_background_jobs = 4\n"
       "```\n");

  Demo("deprecated option (the 'Flush Job Count' fixation)",
       "Old guides suggest flush_job_count = 4; do that.\n");

  Demo("blacklisted option",
       "Benchmarks don't need durability:\n"
       "```ini\n"
       "disable_wal = true\n"
       "wal_bytes_per_sync = 1048576\n"
       "```\n");

  Demo("out-of-range and malformed values",
       "```ini\n"
       "write_buffer_size = lots\n"
       "max_write_buffer_number = 9999\n"
       "block_size = 1024\n"
       "```\n");

  Demo("no configuration at all",
       "I think your system is already well tuned! Great job.\n");

  printf("Full option registry (%zu options, %zu deprecated names "
         "recognized):\n",
         lsm::OptionsSchema::Instance().all().size(),
         lsm::OptionsSchema::Instance().deprecated().size());
  lsm::Options defaults;
  printf("%s", lsm::OptionsSchema::Instance().DescribeAll(defaults).c_str());
  return 0;
}
