// db_bench_sim: the db_bench-equivalent CLI over the simulated
// hardware — run any workload on any profile with any options file and
// get a db_bench-style report. This is the binary the tuning loop
// effectively invokes each iteration.
//
// Usage:
//   db_bench_sim [--workload=fillrandom|readrandom|rrwr|mixgraph]
//                [--device=nvme|hdd] [--cores=N] [--mem_gib=N]
//                [--ops=N] [--value_size=N] [--seed=N]
//                [--options_file=PATH]   (unscaled option values)
//                [--set name=value ...]  (override single options)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_kit/bench_runner.h"
#include "lsm/options_file.h"
#include "lsm/options_schema.h"

using namespace elmo;

namespace {

bool GetFlag(const std::string& arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload = "fillrandom";
  std::string device = "nvme";
  int cores = 4;
  int mem_gib = 4;
  uint64_t ops = 0;  // 0 = workload default
  int value_size = 100;
  uint64_t seed = 42;
  std::string options_file;
  std::vector<std::string> overrides;

  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    std::string v;
    if (GetFlag(arg, "workload", &v)) workload = v;
    else if (GetFlag(arg, "device", &v)) device = v;
    else if (GetFlag(arg, "cores", &v)) cores = atoi(v.c_str());
    else if (GetFlag(arg, "mem_gib", &v)) mem_gib = atoi(v.c_str());
    else if (GetFlag(arg, "ops", &v)) ops = strtoull(v.c_str(), nullptr, 10);
    else if (GetFlag(arg, "value_size", &v)) value_size = atoi(v.c_str());
    else if (GetFlag(arg, "seed", &v)) seed = strtoull(v.c_str(), nullptr, 10);
    else if (GetFlag(arg, "options_file", &v)) options_file = v;
    else if (arg == "--set" && i + 1 < argc) overrides.push_back(argv[++i]);
    else {
      fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  auto hw = HardwareProfile::Make(
      cores, mem_gib,
      device == "hdd" ? DeviceModel::SataHdd() : DeviceModel::NvmeSsd());

  bench::WorkloadSpec spec;
  if (workload == "readrandom") {
    spec = bench::WorkloadSpec::ReadRandom();
  } else if (workload == "rrwr" || workload == "readrandomwriterandom") {
    spec = bench::WorkloadSpec::ReadRandomWriteRandom();
  } else if (workload == "mixgraph") {
    spec = bench::WorkloadSpec::Mixgraph();
  } else if (workload == "fillrandom") {
    spec = bench::WorkloadSpec::FillRandom();
  } else {
    fprintf(stderr, "unknown workload: %s\n", workload.c_str());
    return 2;
  }
  if (ops > 0) {
    spec.num_ops = ops;
    if (spec.preload_keys > 0) spec.preload_keys = ops;
    spec.num_keys = std::max<uint64_t>(ops, spec.num_keys);
  }
  spec.value_size = value_size;
  spec.seed = seed;

  lsm::Options options;
  if (!options_file.empty()) {
    std::vector<std::string> unknown, invalid;
    Status s = lsm::LoadOptionsFile(Env::Posix(), options_file, &options,
                                    &unknown, &invalid);
    if (!s.ok()) {
      fprintf(stderr, "failed to load %s: %s\n", options_file.c_str(),
              s.ToString().c_str());
      return 1;
    }
    for (const auto& u : unknown) {
      fprintf(stderr, "warning: unknown option ignored: %s\n", u.c_str());
    }
    for (const auto& i : invalid) {
      fprintf(stderr, "warning: invalid value ignored: %s\n", i.c_str());
    }
  }
  for (const auto& kv : overrides) {
    size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      fprintf(stderr, "--set expects name=value, got %s\n", kv.c_str());
      return 2;
    }
    Status s = lsm::OptionsSchema::Instance().Apply(
        &options, kv.substr(0, eq), kv.substr(eq + 1));
    if (!s.ok()) {
      fprintf(stderr, "bad --set %s: %s\n", kv.c_str(),
              s.ToString().c_str());
      return 2;
    }
  }

  fprintf(stderr, "hardware: %s\nworkload: %s\n", hw.Label().c_str(),
          spec.Describe().c_str());

  bench::BenchRunner runner(hw, 42);
  bench::BenchResult result = runner.Run(spec, options);
  printf("%s", result.ToReport().c_str());
  return 0;
}
