// Quickstart: open the LSM key-value store on the local filesystem and
// exercise the basic API — puts, gets, batches, iterators, snapshots,
// flush and recovery.
//
//   ./build/examples/quickstart [db_path]
#include <cstdio>
#include <memory>

#include "lsm/db.h"

using namespace elmo;
using namespace elmo::lsm;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/elmo_quickstart_db";

  Options options;
  options.create_if_missing = true;
  options.write_buffer_size = 8 << 20;
  options.bloom_filter_bits_per_key = 10;

  std::unique_ptr<DB> db;
  Status s = DB::Open(options, path, &db);
  if (!s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  printf("opened %s\n", path.c_str());

  // Single writes.
  db->Put({}, "user:1001", "alice");
  db->Put({}, "user:1002", "bob");
  db->Put({}, "user:1003", "carol");

  std::string value;
  s = db->Get({}, "user:1002", &value);
  printf("user:1002 -> %s (%s)\n", value.c_str(), s.ToString().c_str());

  // Atomic batch: rename a user.
  WriteBatch batch;
  batch.Delete("user:1002");
  batch.Put("user:2002", "bob");
  db->Write({}, &batch);
  printf("user:1002 after rename -> %s\n",
         db->Get({}, "user:1002", &value).IsNotFound() ? "NOT_FOUND"
                                                       : value.c_str());

  // Snapshot isolation.
  const Snapshot* snap = db->GetSnapshot();
  db->Put({}, "user:1001", "alice-v2");
  ReadOptions at_snap;
  at_snap.snapshot = snap;
  db->Get(at_snap, "user:1001", &value);
  printf("user:1001 at snapshot -> %s\n", value.c_str());
  db->Get({}, "user:1001", &value);
  printf("user:1001 now         -> %s\n", value.c_str());
  db->ReleaseSnapshot(snap);

  // Range scan.
  printf("all users:\n");
  auto it = db->NewIterator({});
  for (it->Seek("user:"); it->Valid() && it->key().starts_with("user:");
       it->Next()) {
    printf("  %s = %s\n", it->key().ToString().c_str(),
           it->value().ToString().c_str());
  }

  // Push the memtable to an SST and show the engine's internal stats.
  db->FlushMemTable();
  std::string stats;
  db->GetProperty("elmo.stats", &stats);
  printf("\nengine stats after flush:\n%s", stats.c_str());

  // Recovery: reopen and read back.
  db.reset();
  s = DB::Open(options, path, &db);
  db->Get({}, "user:2002", &value);
  printf("\nafter reopen, user:2002 -> %s (%s)\n", value.c_str(),
         s.ToString().c_str());
  return 0;
}
