// auto_tune: the headline demo — run the full ELMo-Tune feedback loop
// (simulated GPT-4 expert + benchmark + safeguards) for a chosen
// hardware profile and workload, narrating each iteration.
//
//   ./build/examples/auto_tune [hdd|nvme] [fillrandom|readrandom|rrwr|mixgraph] [cores] [mem_gib]
#include <cstdio>
#include <cstring>

#include "elmo/tuning_session.h"
#include "llm/expert_llm.h"

using namespace elmo;

int main(int argc, char** argv) {
  const std::string device = argc > 1 ? argv[1] : "nvme";
  const std::string workload = argc > 2 ? argv[2] : "fillrandom";
  const int cores = argc > 3 ? atoi(argv[3]) : 4;
  const int mem_gib = argc > 4 ? atoi(argv[4]) : 4;

  auto hw = HardwareProfile::Make(
      cores, mem_gib,
      device == "hdd" ? DeviceModel::SataHdd() : DeviceModel::NvmeSsd());

  bench::WorkloadSpec spec;
  if (workload == "readrandom") {
    spec = bench::WorkloadSpec::ReadRandom(30000, 300000);
  } else if (workload == "rrwr") {
    spec = bench::WorkloadSpec::ReadRandomWriteRandom(150000);
  } else if (workload == "mixgraph") {
    spec = bench::WorkloadSpec::Mixgraph(150000);
  } else {
    spec = bench::WorkloadSpec::FillRandom(400000);
  }

  printf("=== ELMo-Tune demo ===\n");
  printf("hardware: %s\nworkload: %s\n\n", hw.Label().c_str(),
         spec.Describe().c_str());

  bench::BenchRunner runner(hw);
  llm::SimulatedExpertLlm gpt;
  tune::TuningSession session(&runner, &gpt, spec);
  tune::TuningOutcome out = session.Run();

  printf("iteration 0 (out-of-box): %.0f ops/sec, p99w %.2f us, p99r "
         "%.2f us\n\n",
         out.baseline.ops_per_sec, out.baseline.p99_write_us(),
         out.baseline.p99_read_us());

  for (const auto& rec : out.iterations) {
    printf("--- iteration %d ---\n", rec.iteration);
    printf("LLM applied:");
    if (rec.applied_changes.empty()) printf(" (nothing usable)");
    for (const auto& [k, v] : rec.applied_changes) {
      printf(" %s=%s", k.c_str(), v.c_str());
    }
    printf("\n");
    if (rec.safeguard.total_rejected() > 0) {
      printf("safeguard: %s\n", rec.safeguard.Summary().c_str());
    }
    printf("result: %.0f ops/sec -> %s (%s)\n\n",
           rec.result.ops_per_sec, rec.kept ? "KEPT" : "reverted",
           rec.decision_reason.c_str());
  }

  printf("=== outcome ===\n");
  printf("best: %.0f ops/sec (%.2fx over default)\n",
         out.best_result.ops_per_sec, out.ThroughputGain());
  printf("\nfinal options file:\n%s", out.final_options_file.c_str());
  return 0;
}
